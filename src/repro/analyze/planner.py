"""Constructive capacity planning: budgets first, diagnostics second.

The AP201–AP208 capacity rules *check* a placement after the fact; this
module *constructs* one that satisfies them.  Components are bin-packed
first-fit-decreasing into half-cores under two per-bin budgets — STE
capacity (AP201/AP202) and the routing-pressure proxy (AP207) — then
the whole-replica budgets (output regions AP204, counters AP205,
booleans AP206) and board-level feasibility (AP202/AP203) are evaluated
against the resulting footprint.  The emitted
:class:`~repro.ap.placement.Placement` is consumed directly by
:func:`repro.core.deployment.deploy_plan`, which is the seam ROADMAP
item 4's sharded fleet builds on: a fleet scheduler can hand each
workload a pre-validated placement instead of letting deployment
re-pack.

``CapacityPlan.violations`` carries any budget the construction could
*not* satisfy (an over-capacity component, a replica larger than the
board...), so callers get a complete bill of materials rather than the
first exception.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator

from repro.ap.geometry import (
    BOOLEAN_ELEMENTS_PER_DEVICE,
    COUNTERS_PER_DEVICE,
    OUTPUT_REGIONS_PER_DEVICE,
    REPORTING_ELEMENTS_PER_REGION,
    BoardGeometry,
)
from repro.ap.placement import Placement, segments_available
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton


@dataclass(frozen=True)
class HalfCoreBin:
    """One half-core's planned load."""

    index: int
    components: tuple[int, ...]
    states: int
    edges: int

    def utilization(self, capacity: int) -> float:
        return self.states / capacity if capacity else 0.0


@dataclass(frozen=True)
class PlanViolation:
    """One budget the construction could not satisfy."""

    code: str
    """The capacity-rule code the violation corresponds to."""
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {"code": self.code, "message": self.message}


@dataclass(frozen=True)
class CapacityPlan:
    """A constructed placement plus its resource bill."""

    automaton: str
    geometry: BoardGeometry
    bins: tuple[HalfCoreBin, ...]
    assignment: dict[int, int]
    reporting_used: int
    reporting_budget: int
    counters_used: int
    counters_budget: int
    booleans_used: int
    booleans_budget: int
    segments: int
    violations: tuple[PlanViolation, ...]

    @property
    def half_cores(self) -> int:
        return len(self.bins)

    @property
    def feasible(self) -> bool:
        return not self.violations

    @property
    def total_states(self) -> int:
        return sum(b.states for b in self.bins)

    def utilization(self) -> float:
        capacity = self.geometry.stes_per_half_core
        if not self.bins:
            return 0.0
        return self.total_states / (len(self.bins) * capacity)

    def to_placement(self) -> Placement:
        """The placement ``deploy_plan`` consumes."""
        return Placement(
            half_cores=len(self.bins),
            assignment=dict(self.assignment),
            loads=tuple(b.states for b in self.bins),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "automaton": self.automaton,
            "half_cores": self.half_cores,
            "segments": self.segments,
            "feasible": self.feasible,
            "utilization": round(self.utilization(), 4),
            "bins": [
                {
                    "index": b.index,
                    "components": list(b.components),
                    "states": b.states,
                    "edges": b.edges,
                }
                for b in self.bins
            ],
            "reporting": {
                "used": self.reporting_used,
                "budget": self.reporting_budget,
            },
            "counters": {
                "used": self.counters_used,
                "budget": self.counters_budget,
            },
            "booleans": {
                "used": self.booleans_used,
                "budget": self.booleans_budget,
            },
            "violations": [v.to_dict() for v in self.violations],
        }


def _component_edges(
    automaton: Automaton, analysis: AutomatonAnalysis
) -> dict[int, int]:
    component_of = analysis.component_index()
    edges: dict[int, int] = {}
    for src, _dst in automaton.edges():
        cid = component_of[src]
        edges[cid] = edges.get(cid, 0) + 1
    return edges


def plan_capacity(
    automaton: Automaton,
    *,
    geometry: BoardGeometry | None = None,
    analysis: AutomatonAnalysis | None = None,
    counters_used: int = 0,
    booleans_used: int = 0,
    routing_edge_factor: float = 1.0,
) -> CapacityPlan:
    """Construct a budget-respecting placement for one FSM replica.

    First-fit-decreasing over components ordered by STE count, with a
    bin admitting a component only while both the STE capacity and the
    routing-pressure proxy (``routing_edge_factor`` x capacity
    programmed edges) hold — so AP201/AP207 findings are impossible on
    the result by construction.  Replica-level budgets that packing
    cannot trade off (a component too big for any bin, reporting or
    counter overflow, a replica wider than the board) are recorded as
    :class:`PlanViolation` entries keyed by the corresponding rule code.
    """
    geometry = geometry or BoardGeometry()
    analysis = analysis or AutomatonAnalysis(automaton)
    capacity = geometry.stes_per_half_core
    edge_limit = int(capacity * routing_edge_factor)
    components = analysis.connected_components()
    edges = _component_edges(automaton, analysis)

    violations: list[PlanViolation] = []
    sized = sorted(
        ((len(members), cid) for cid, members in enumerate(components)),
        reverse=True,
    )
    bin_components: list[list[int]] = []
    bin_states: list[int] = []
    bin_edges: list[int] = []
    assignment: dict[int, int] = {}
    for size, cid in sized:
        cid_edges = edges.get(cid, 0)
        if size > capacity:
            violations.append(
                PlanViolation(
                    code="AP201",
                    message=(
                        f"connected component {cid} has {size} states, "
                        f"exceeding the {capacity}-STE half-core; no "
                        "packing can place it"
                    ),
                )
            )
            continue
        placed = False
        for index in range(len(bin_states)):
            if (
                bin_states[index] + size <= capacity
                and bin_edges[index] + cid_edges <= edge_limit
            ):
                bin_components[index].append(cid)
                bin_states[index] += size
                bin_edges[index] += cid_edges
                assignment[cid] = index
                placed = True
                break
        if not placed:
            bin_components.append([cid])
            bin_states.append(size)
            bin_edges.append(cid_edges)
            assignment[cid] = len(bin_states) - 1
            if cid_edges > edge_limit:
                # A lone component can still exceed the proxy; packing
                # cannot fix that, only flag it.
                violations.append(
                    PlanViolation(
                        code="AP207",
                        message=(
                            f"component {cid} alone programs "
                            f"{cid_edges} transitions, above the "
                            f"routing proxy of {edge_limit}"
                        ),
                    )
                )

    half_cores = max(1, len(bin_states))
    if half_cores > geometry.half_cores:
        violations.append(
            PlanViolation(
                code="AP202",
                message=(
                    f"replica needs {half_cores} half-cores; the board "
                    f"has {geometry.half_cores}"
                ),
            )
        )

    per_device = geometry.half_cores_per_device
    devices = max(1, math.ceil(half_cores / per_device))
    reporting_used = len(automaton.reporting_states())
    reporting_budget = devices * (
        OUTPUT_REGIONS_PER_DEVICE * REPORTING_ELEMENTS_PER_REGION
    )
    if reporting_used > reporting_budget:
        violations.append(
            PlanViolation(
                code="AP204",
                message=(
                    f"{reporting_used} reporting states exceed the "
                    f"{reporting_budget} reporting elements of "
                    f"{devices} device(s)"
                ),
            )
        )
    counters_budget = devices * COUNTERS_PER_DEVICE
    if counters_used > counters_budget:
        violations.append(
            PlanViolation(
                code="AP205",
                message=(
                    f"{counters_used} counters exceed the "
                    f"{counters_budget} the replica's device(s) provide"
                ),
            )
        )
    booleans_budget = devices * BOOLEAN_ELEMENTS_PER_DEVICE
    if booleans_used > booleans_budget:
        violations.append(
            PlanViolation(
                code="AP206",
                message=(
                    f"{booleans_used} boolean elements exceed the "
                    f"{booleans_budget} the replica's device(s) provide"
                ),
            )
        )

    segments = (
        segments_available(geometry, half_cores)
        if half_cores <= geometry.half_cores
        else 0
    )
    bins = tuple(
        HalfCoreBin(
            index=index,
            components=tuple(sorted(bin_components[index])),
            states=bin_states[index],
            edges=bin_edges[index],
        )
        for index in range(len(bin_states))
    )
    return CapacityPlan(
        automaton=automaton.name,
        geometry=geometry,
        bins=bins,
        assignment=assignment,
        reporting_used=reporting_used,
        reporting_budget=reporting_budget,
        counters_used=counters_used,
        counters_budget=counters_budget,
        booleans_used=booleans_used,
        booleans_budget=booleans_budget,
        segments=segments,
        violations=tuple(violations),
    )


def iter_plan_diagnostics(plan: CapacityPlan) -> Iterator[str]:
    """Human-readable one-liners for a plan's violations."""
    for violation in plan.violations:
        yield f"{violation.code}: {violation.message}"

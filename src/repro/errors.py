"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the broad failure families below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class AutomatonError(ReproError):
    """A malformed automaton: dangling edges, bad labels, invalid ids."""


class RegexSyntaxError(ReproError):
    """The regex parser rejected the pattern.

    Attributes
    ----------
    pattern:
        The offending pattern text.
    position:
        0-based index into ``pattern`` where parsing failed.
    """

    def __init__(self, message: str, pattern: str, position: int) -> None:
        super().__init__(f"{message} (pattern={pattern!r}, position={position})")
        self.pattern = pattern
        self.position = position


class CapacityError(ReproError):
    """An automaton or flow set exceeds the modeled AP hardware capacity."""


class PlacementError(ReproError):
    """An automaton could not be placed onto the available half-cores."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration values."""


class LintError(ReproError):
    """Static analysis refused an automaton or deployment.

    Raised by the pre-deployment lint gate when error-level diagnostics
    are present.  ``report`` carries the full
    :class:`repro.lint.LintReport` so callers can render or inspect the
    individual diagnostics.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class ExecutionError(ReproError):
    """Runtime failure of the functional automata executor."""


class TransientSegmentError(ExecutionError):
    """A transient, retryable failure of one segment's execution.

    Raised for failures that a bit-exact re-execution is expected to
    clear: injected transient faults, SVC slot exhaustion, FIV-write
    failures.  ``kind`` names the failure family (see
    :mod:`repro.exec.faults`); ``segment`` is the failing segment index.
    The custom ``__reduce__`` keeps both attributes intact across the
    process-pool pickle boundary.
    """

    def __init__(
        self, message: str, *, kind: str = "transient", segment: int = -1
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.segment = segment

    def __reduce__(self):  # type: ignore[override]
        return (
            self.__class__,
            (self.args[0],),
            {"kind": self.kind, "segment": self.segment},
        )


class SegmentTimeoutError(ExecutionError):
    """A segment's dispatch exceeded the per-segment timeout (retryable)."""


class WorkerCrashError(ExecutionError):
    """A worker process died while executing a segment (retryable).

    On the process backend this wraps ``BrokenProcessPool``; the serial
    backend raises it inline to *model* a crash under fault injection.
    """


#: Failure families the recovery policy may re-execute: the segment's
#: cycle-domain outcome is deterministic, so a retry is bit-exact and
#: recovery is verifiable (the AP's deterministic cycle model).
RETRYABLE_ERRORS = (TransientSegmentError, SegmentTimeoutError, WorkerCrashError)


class CheckpointError(ReproError):
    """A checkpoint store path is unusable (e.g. the directory is a
    file).  Corrupted or torn checkpoint *records* never raise — the
    store drops them and the affected segments re-execute."""


class AdmissionError(ReproError):
    """The admission guard refused a run predicted to exceed its
    resource budget (see :class:`repro.exec.durability.AdmissionPolicy`)."""


class ArtifactError(ReproError):
    """A benchmark artifact (``BENCH_*.json``) is missing, malformed,
    or carries an unsupported schema version."""


class CompositionError(ReproError):
    """Segment results could not be composed into a final answer."""

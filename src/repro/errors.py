"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the broad failure families below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class AutomatonError(ReproError):
    """A malformed automaton: dangling edges, bad labels, invalid ids."""


class RegexSyntaxError(ReproError):
    """The regex parser rejected the pattern.

    Attributes
    ----------
    pattern:
        The offending pattern text.
    position:
        0-based index into ``pattern`` where parsing failed.
    """

    def __init__(self, message: str, pattern: str, position: int) -> None:
        super().__init__(f"{message} (pattern={pattern!r}, position={position})")
        self.pattern = pattern
        self.position = position


class CapacityError(ReproError):
    """An automaton or flow set exceeds the modeled AP hardware capacity."""


class PlacementError(ReproError):
    """An automaton could not be placed onto the available half-cores."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration values."""


class LintError(ReproError):
    """Static analysis refused an automaton or deployment.

    Raised by the pre-deployment lint gate when error-level diagnostics
    are present.  ``report`` carries the full
    :class:`repro.lint.LintReport` so callers can render or inspect the
    individual diagnostics.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class ExecutionError(ReproError):
    """Runtime failure of the functional automata executor."""


class ArtifactError(ReproError):
    """A benchmark artifact (``BENCH_*.json``) is missing, malformed,
    or carries an unsupported schema version."""


class CompositionError(ReproError):
    """Segment results could not be composed into a final answer."""

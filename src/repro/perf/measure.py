"""Wall-clock measurement: warmup + repeats, summarized as median/MAD.

Cycle-domain numbers are deterministic, so one run suffices; host
wall-clock is not.  :func:`measure_wall` runs a callable ``warmup``
times unrecorded (JIT-warm caches, page in the trace), then ``repeats``
recorded times, and summarizes with the median and the median absolute
deviation — both robust to the one-off scheduling hiccups that make
mean/stddev useless on shared CI runners.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import median
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class WallClockStats:
    """Robust summary of repeated wall-clock timings, in seconds."""

    median_s: float
    mad_s: float
    repeats: int
    warmup: int
    samples_s: tuple[float, ...] = ()

    def to_dict(self) -> dict:
        return {
            "median_s": self.median_s,
            "mad_s": self.mad_s,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "samples_s": list(self.samples_s),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WallClockStats":
        return cls(
            median_s=float(payload["median_s"]),
            mad_s=float(payload["mad_s"]),
            repeats=int(payload["repeats"]),
            warmup=int(payload["warmup"]),
            samples_s=tuple(
                float(s) for s in payload.get("samples_s", ())
            ),
        )


def summarize_samples(
    samples: list[float], *, warmup: int = 0
) -> WallClockStats:
    """Median/MAD summary of recorded samples (post-warmup)."""
    if not samples:
        raise ValueError("cannot summarize an empty sample list")
    center = median(samples)
    mad = median([abs(s - center) for s in samples])
    return WallClockStats(
        median_s=center,
        mad_s=mad,
        repeats=len(samples),
        warmup=warmup,
        samples_s=tuple(samples),
    )


def measure_wall(
    fn: Callable[[], T], *, warmup: int = 1, repeats: int = 3
) -> tuple[T, WallClockStats]:
    """Run ``fn`` with warmup, time ``repeats`` passes, keep the last
    result (all passes are deterministic replicas in this codebase)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        fn()
    samples: list[float] = []
    result: T
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return result, summarize_samples(samples, warmup=warmup)

"""Suite driver behind ``repro bench run``.

Runs a selection of the evaluation benchmarks end to end, times each
with warmup + repeats, and packages everything as a
:class:`~repro.perf.artifact.PerfReport`.  Mirrors the conventions of
``benchmarks/conftest.py``: trace budgets shrink for the heavy
functional-simulation workloads, and the ``REPRO_BENCH_ONLY``
environment knob restricts the suite (that is how CI's perf gate picks
its smoke subset).
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Callable

from repro.core.config import DEFAULT_CONFIG
from repro.errors import ConfigurationError
from repro.exec.backend import ExecutionBackend, resolve_backend
from repro.exec.durability import CircuitBreaker, HedgePolicy
from repro.exec.faults import FaultPlan
from repro.exec.resilience import RetryPolicy
from repro.perf.artifact import BenchmarkRecord, PerfReport
from repro.perf.measure import measure_wall
from repro.sim.runner import run_benchmark
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark

# Dense active sets make functional simulation slow; shrink their trace
# budget the same way benchmarks/conftest.py does (speedups are flat in
# trace size for these).
HEAVY_TRACE_DIVISOR = {"Fermi": 4}


def trace_budget(
    name: str, trace_bytes: int, modeled_bytes: int | None
) -> tuple[int, int | None]:
    """The (trace, modeled) byte budget one benchmark actually runs at.

    Heavy workloads divide both by :data:`HEAVY_TRACE_DIVISOR` so the
    timing scale factor — and therefore every speedup ratio — is
    unchanged.  ``repro.analyze`` mirrors these budgets so predictions
    compare against ``BENCH_*.json`` artifacts byte-for-byte.
    """
    divisor = HEAVY_TRACE_DIVISOR.get(name, 1)
    return (
        trace_bytes // divisor,
        modeled_bytes // divisor if modeled_bytes is not None else None,
    )


def select_benchmarks(spec: str | None = None) -> tuple[str, ...]:
    """Resolve the benchmark selection for one bench run.

    Precedence: an explicit comma-separated ``spec``, then the
    ``REPRO_BENCH_ONLY`` environment variable, then the full suite.
    Unknown names raise :class:`ConfigurationError`.
    """
    raw = spec if spec else os.environ.get("REPRO_BENCH_ONLY", "")
    if not raw:
        return BENCHMARK_NAMES
    names = tuple(name for name in raw.split(",") if name)
    unknown = [name for name in names if name not in BENCHMARK_NAMES]
    if unknown:
        raise ConfigurationError(
            f"unknown benchmark(s) {', '.join(sorted(unknown))} "
            f"(see `repro list`)"
        )
    return names


def run_bench_suite(
    names: tuple[str, ...] = BENCHMARK_NAMES,
    *,
    label: str = "local",
    scale: float = 0.1,
    seed: int = 0,
    ranks: int = 1,
    trace_bytes: int = 65_536,
    modeled_bytes: int | None = None,
    warmup: int = 1,
    repeats: int = 3,
    backend: ExecutionBackend | str | None = None,
    workers: int | None = None,
    use_fiv: bool = True,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    hedge: HedgePolicy | None = None,
    breaker: CircuitBreaker | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    progress: Callable[[str], None] | None = None,
) -> PerfReport:
    """Run ``names`` and return the artifact-ready report.

    ``backend``/``workers`` select the host execution backend
    (:mod:`repro.exec`).  Cycle-domain metrics are backend-invariant, so
    artifacts captured under different backends compare clean with
    ``--fail-on cycles`` and differ only in their wall-clock stats —
    that is how serial vs. process wall speedups are measured (see
    EXPERIMENTS.md).  One backend instance is shared by every benchmark
    and repeat, so process pools are spawned (and their workers warmed)
    once per suite, not once per run.

    ``use_fiv=False`` disables the flow-invalidation vector, removing
    the cross-segment dispatch dependency so the process backend can run
    all segments concurrently (wall-parallel ablation).

    ``retry``/``faults`` thread the recovery policy and fault plan into
    every run (the chaos CI job injects worker crashes here).  They are
    recorded in the artifact's ``parameters`` — which are never gated —
    while ``cycles`` stay bit-exact under recovery, so a chaos artifact
    compares clean against a fault-free baseline.

    ``checkpoint`` names a directory for the durable segment-result
    store; ``resume=True`` replays segments already proven there under
    the same run fingerprint.  Resumed cycles are bit-exact, so a
    resumed artifact also compares clean with ``--fail-on cycles`` —
    the kill-and-resume CI stage depends on it.  ``hedge``/``breaker``
    attach straggler hedging and the circuit breaker to a process
    backend named by ``backend`` (instances already own theirs).
    """
    resolved = resolve_backend(
        backend, workers=workers, hedge=hedge, breaker=breaker
    )
    owns_backend = not isinstance(backend, ExecutionBackend)
    config = (
        DEFAULT_CONFIG if use_fiv else replace(DEFAULT_CONFIG, use_fiv=False)
    )
    report = PerfReport(
        label=label,
        parameters={
            "scale": scale,
            "seed": seed,
            "ranks": ranks,
            "trace_bytes": trace_bytes,
            "modeled_bytes": modeled_bytes,
            "warmup": warmup,
            "repeats": repeats,
            "backend": resolved.name,
            "workers": getattr(resolved, "workers", 1),
            "use_fiv": use_fiv,
            "benchmarks": list(names),
            "retries": retry.max_retries if retry is not None else 0,
            "segment_timeout_s": (
                retry.segment_timeout_s if retry is not None else None
            ),
            "faults": faults.to_dict() if faults is not None else None,
            "checkpoint": checkpoint,
            "resume": resume,
            "hedge": hedge is not None,
            "breaker": breaker is not None,
        },
    )
    try:
        for name in names:
            budget, modeled = trace_budget(name, trace_bytes, modeled_bytes)
            bench = build_benchmark(name, scale=scale, seed=seed)
            run, wall = measure_wall(
                lambda: run_benchmark(
                    bench,
                    ranks=ranks,
                    trace_bytes=budget,
                    modeled_bytes=modeled,
                    trace_seed=seed + 1,
                    config=config,
                    backend=resolved,
                    retry=retry,
                    faults=faults,
                    checkpoint=checkpoint,
                    resume=resume,
                ),
                warmup=warmup,
                repeats=repeats,
            )
            report.add(BenchmarkRecord.from_run(run, wall=wall))
            if progress is not None:
                progress(
                    f"{run.name}: speedup {run.speedup:.2f}x, "
                    f"wall {wall.median_s * 1e3:.1f}ms"
                    f"±{wall.mad_s * 1e3:.1f}ms"
                )
    finally:
        if owns_backend:
            resolved.close()
    return report

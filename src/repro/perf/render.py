"""Text / markdown / JSON renderers for artifacts and diffs."""

from __future__ import annotations

import json

from repro.perf.artifact import PerfReport
from repro.perf.compare import ChangeKind, PerfDiff

FORMATS = ("text", "markdown", "json")

_REPORT_COLUMNS = (
    ("benchmark", "{:<22}"),
    ("ranks", "{:>5}"),
    ("segments", "{:>8}"),
    ("pap cycles", "{:>12}"),
    ("speedup", "{:>8}"),
    ("wall median", "{:>12}"),
)


def _report_rows(report: PerfReport) -> list[tuple[str, ...]]:
    rows = []
    for key in sorted(report.benchmarks):
        record = report.benchmarks[key]
        wall = (
            f"{record.wall.median_s * 1e3:.1f}ms"
            if record.wall is not None
            else "-"
        )
        rows.append(
            (
                key,
                str(record.ranks),
                str(record.cycles.get("segments", "-")),
                str(record.cycles.get("pap_cycles", "-")),
                f"{record.speedup:.2f}x",
                wall,
            )
        )
    return rows


def _report_footer(report: PerfReport) -> str:
    geomean = report.geomean_speedup
    mean = f"{geomean:.2f}x" if geomean is not None else "n/a"
    return (
        f"{len(report.benchmarks)} benchmark(s), geomean speedup {mean} "
        f"[label {report.label}, schema v{report.schema_version}]"
    )


def render_report_text(report: PerfReport) -> str:
    header = "".join(
        fmt.format(title) for title, fmt in _REPORT_COLUMNS
    )
    lines = [header, "-" * len(header)]
    for row in _report_rows(report):
        lines.append(
            "".join(
                fmt.format(cell)
                for cell, (_, fmt) in zip(row, _REPORT_COLUMNS)
            )
        )
    lines.append(_report_footer(report))
    return "\n".join(lines)


def render_report_markdown(report: PerfReport) -> str:
    titles = [title for title, _ in _REPORT_COLUMNS]
    lines = [
        "| " + " | ".join(titles) + " |",
        "| " + " | ".join("---" for _ in titles) + " |",
    ]
    for row in _report_rows(report):
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    lines.append(_report_footer(report))
    return "\n".join(lines)


def render_report(report: PerfReport, fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps(report.to_dict(), indent=2)
    if fmt == "markdown":
        return render_report_markdown(report)
    return render_report_text(report)


_KIND_ORDER = (
    ChangeKind.REGRESSION,
    ChangeKind.REMOVED,
    ChangeKind.NEW,
    ChangeKind.IMPROVEMENT,
)


def _diff_summary(diff: PerfDiff) -> str:
    if diff.clean:
        return (
            f"clean: {diff.candidate_label!r} matches "
            f"{diff.baseline_label!r} in both domains"
        )
    counts = ", ".join(
        f"{len(diff.of_kind(kind))} {kind.value}"
        for kind in _KIND_ORDER
        if diff.of_kind(kind)
    )
    return f"{diff.baseline_label!r} -> {diff.candidate_label!r}: {counts}"


def render_diff_text(diff: PerfDiff) -> str:
    lines = []
    for kind in _KIND_ORDER:
        lines.extend(c.describe() for c in diff.of_kind(kind))
    lines.append(_diff_summary(diff))
    return "\n".join(lines)


def render_diff_markdown(diff: PerfDiff) -> str:
    lines = [
        "| kind | benchmark | metric | baseline | candidate | detail |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for kind in _KIND_ORDER:
        for c in diff.of_kind(kind):
            base = "-" if c.baseline is None else c.baseline
            cand = "-" if c.candidate is None else c.candidate
            lines.append(
                f"| {c.kind.value} | {c.benchmark} "
                f"| {c.metric or '-'} | {base} | {cand} "
                f"| {c.detail or '-'} |"
            )
    lines.append("")
    lines.append(_diff_summary(diff))
    return "\n".join(lines)


def render_diff(diff: PerfDiff, fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps(diff.to_dict(), indent=2)
    if fmt == "markdown":
        return render_diff_markdown(diff)
    return render_diff_text(diff)

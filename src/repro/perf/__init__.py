"""repro.perf — benchmark artifacts, baselines, and regression gating.

The performance-tracking spine of the repo: every benchmark run can be
captured as a versioned ``BENCH_*.json`` artifact
(:mod:`repro.perf.artifact`), timed with warmup/repeats and summarized
as median/MAD (:mod:`repro.perf.measure`), diffed against a committed
baseline under a dual-domain tolerance policy — cycle metrics exact,
wall-clock statistical — (:mod:`repro.perf.compare`), and rendered as
text, markdown, or JSON (:mod:`repro.perf.render`).  The ``repro bench
run/compare/report`` CLI family and CI's perf gate are thin wrappers
over these pieces::

    from repro.perf import compare_reports, load_report

    diff = compare_reports(load_report("benchmarks/baselines/smoke.json"),
                           load_report("BENCH_ci.json"))
    assert diff.clean, diff.regressions
"""

from repro.perf.artifact import (
    CYCLE_DOMAIN,
    SCHEMA_VERSION,
    WALL_DOMAIN,
    BenchmarkRecord,
    PerfReport,
    load_report,
    report_from_runs,
    run_key,
)
from repro.perf.bench import (
    HEAVY_TRACE_DIVISOR,
    run_bench_suite,
    select_benchmarks,
)
from repro.perf.compare import (
    ChangeKind,
    MetricChange,
    PerfDiff,
    TolerancePolicy,
    compare_reports,
)
from repro.perf.measure import (
    WallClockStats,
    measure_wall,
    summarize_samples,
)
from repro.perf.render import (
    FORMATS,
    render_diff,
    render_report,
)

__all__ = [
    "BenchmarkRecord",
    "CYCLE_DOMAIN",
    "ChangeKind",
    "FORMATS",
    "HEAVY_TRACE_DIVISOR",
    "MetricChange",
    "PerfDiff",
    "PerfReport",
    "SCHEMA_VERSION",
    "TolerancePolicy",
    "WALL_DOMAIN",
    "WallClockStats",
    "compare_reports",
    "load_report",
    "measure_wall",
    "render_diff",
    "render_report",
    "report_from_runs",
    "run_bench_suite",
    "run_key",
    "select_benchmarks",
    "summarize_samples",
]

"""Comparison engine: dual-domain diff of two benchmark artifacts.

The two measurement domains get different tolerance policies:

* **cycles** — the simulator is deterministic, so every cycle-domain
  metric must match its baseline bit-for-bit.  Any drift means the
  *model* changed (a fidelity regression, or a deliberate change that
  must re-baseline) and is always reported as a regression, even when
  the number moved in the "good" direction.
* **wall** — host timings are noisy, so medians are compared under a
  configurable relative threshold widened by both runs' MADs.  Moves
  beyond the band are regressions or improvements by direction.

The diff is typed (:class:`ChangeKind`) so renderers and the CI gate
can filter: ``repro bench compare --fail-on cycles`` ignores wall-clock
noise across machines while still failing on fidelity drift.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.perf.artifact import (
    CYCLE_DOMAIN,
    WALL_DOMAIN,
    BenchmarkRecord,
    PerfReport,
)
from repro.perf.measure import WallClockStats


class ChangeKind(enum.Enum):
    REGRESSION = "regression"
    IMPROVEMENT = "improvement"
    NEW = "new"
    REMOVED = "removed"


@dataclass(frozen=True)
class MetricChange:
    """One observed difference between baseline and candidate."""

    benchmark: str
    metric: str | None
    domain: str
    kind: ChangeKind
    baseline: object = None
    candidate: object = None
    detail: str = ""

    def describe(self) -> str:
        where = self.benchmark
        if self.metric:
            where = f"{where} {self.domain}.{self.metric}"
        tail = f" ({self.detail})" if self.detail else ""
        if self.kind in (ChangeKind.NEW, ChangeKind.REMOVED):
            return f"[{self.kind.value.upper()}] {where}{tail}"
        return (
            f"[{self.kind.value.upper()}] {where}: "
            f"{self.baseline} -> {self.candidate}{tail}"
        )


@dataclass(frozen=True)
class TolerancePolicy:
    """Wall-clock noise model: a median move counts only when it
    clears ``rel_tolerance * baseline_median`` *plus* ``mad_factor``
    times the combined MADs of the two runs."""

    wall_rel_tolerance: float = 0.10
    mad_factor: float = 3.0

    def classify_wall(
        self, base: WallClockStats, cand: WallClockStats
    ) -> ChangeKind | None:
        delta = cand.median_s - base.median_s
        allowance = self.wall_rel_tolerance * base.median_s
        noise = self.mad_factor * (base.mad_s + cand.mad_s)
        if delta > allowance + noise:
            return ChangeKind.REGRESSION
        if -delta > allowance + noise:
            return ChangeKind.IMPROVEMENT
        return None


@dataclass
class PerfDiff:
    """Typed result of comparing two :class:`PerfReport` artifacts."""

    baseline_label: str
    candidate_label: str
    changes: list[MetricChange] = field(default_factory=list)

    def of_kind(self, kind: ChangeKind) -> list[MetricChange]:
        return [c for c in self.changes if c.kind is kind]

    @property
    def regressions(self) -> list[MetricChange]:
        return self.of_kind(ChangeKind.REGRESSION)

    @property
    def improvements(self) -> list[MetricChange]:
        return self.of_kind(ChangeKind.IMPROVEMENT)

    @property
    def added(self) -> list[MetricChange]:
        return self.of_kind(ChangeKind.NEW)

    @property
    def removed(self) -> list[MetricChange]:
        return self.of_kind(ChangeKind.REMOVED)

    def regressions_in(self, domains: tuple[str, ...]) -> list[MetricChange]:
        return [r for r in self.regressions if r.domain in domains]

    @property
    def clean(self) -> bool:
        """No changes at all — the all-green outcome."""
        return not self.changes

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline_label,
            "candidate": self.candidate_label,
            "clean": self.clean,
            "counts": {
                kind.value: len(self.of_kind(kind)) for kind in ChangeKind
            },
            "changes": [
                {
                    "benchmark": c.benchmark,
                    "metric": c.metric,
                    "domain": c.domain,
                    "kind": c.kind.value,
                    "baseline": c.baseline,
                    "candidate": c.candidate,
                    "detail": c.detail,
                }
                for c in self.changes
            ],
        }


def _relative(base: object, cand: object) -> str:
    if isinstance(base, (int, float)) and isinstance(cand, (int, float)) \
            and not isinstance(base, bool) and not isinstance(cand, bool):
        if base:
            return f"{(cand - base) / base:+.2%}"
        return "baseline was 0"
    return ""


def _compare_cycles(
    diff: PerfDiff, base: BenchmarkRecord, cand: BenchmarkRecord
) -> None:
    for metric in sorted(set(base.cycles) | set(cand.cycles)):
        if metric not in cand.cycles:
            diff.changes.append(
                MetricChange(
                    benchmark=base.key,
                    metric=metric,
                    domain=CYCLE_DOMAIN,
                    kind=ChangeKind.REMOVED,
                    baseline=base.cycles[metric],
                    detail="metric absent from candidate",
                )
            )
            continue
        if metric not in base.cycles:
            diff.changes.append(
                MetricChange(
                    benchmark=base.key,
                    metric=metric,
                    domain=CYCLE_DOMAIN,
                    kind=ChangeKind.NEW,
                    candidate=cand.cycles[metric],
                    detail="metric absent from baseline",
                )
            )
            continue
        before, after = base.cycles[metric], cand.cycles[metric]
        if before != after:
            diff.changes.append(
                MetricChange(
                    benchmark=base.key,
                    metric=metric,
                    domain=CYCLE_DOMAIN,
                    kind=ChangeKind.REGRESSION,
                    baseline=before,
                    candidate=after,
                    detail=_relative(before, after) or "cycle-domain drift",
                )
            )


def _compare_wall(
    diff: PerfDiff,
    base: BenchmarkRecord,
    cand: BenchmarkRecord,
    policy: TolerancePolicy,
) -> None:
    if base.wall is None or cand.wall is None:
        return
    kind = policy.classify_wall(base.wall, cand.wall)
    if kind is None:
        return
    diff.changes.append(
        MetricChange(
            benchmark=base.key,
            metric="median_s",
            domain=WALL_DOMAIN,
            kind=kind,
            baseline=base.wall.median_s,
            candidate=cand.wall.median_s,
            detail=(
                f"{_relative(base.wall.median_s, cand.wall.median_s)} "
                f"vs ±({policy.wall_rel_tolerance:.0%} "
                f"+ {policy.mad_factor:g}·MAD)"
            ).strip(),
        )
    )


def compare_reports(
    baseline: PerfReport,
    candidate: PerfReport,
    *,
    policy: TolerancePolicy | None = None,
) -> PerfDiff:
    """Diff two artifacts benchmark-by-benchmark, metric-by-metric."""
    policy = policy or TolerancePolicy()
    diff = PerfDiff(
        baseline_label=baseline.label, candidate_label=candidate.label
    )
    keys = sorted(set(baseline.benchmarks) | set(candidate.benchmarks))
    for key in keys:
        base = baseline.benchmarks.get(key)
        cand = candidate.benchmarks.get(key)
        if cand is None:
            diff.changes.append(
                MetricChange(
                    benchmark=key,
                    metric=None,
                    domain="suite",
                    kind=ChangeKind.REMOVED,
                    detail="benchmark absent from candidate",
                )
            )
            continue
        if base is None:
            diff.changes.append(
                MetricChange(
                    benchmark=key,
                    metric=None,
                    domain="suite",
                    kind=ChangeKind.NEW,
                    detail="benchmark absent from baseline",
                )
            )
            continue
        _compare_cycles(diff, base, cand)
        _compare_wall(diff, base, cand, policy)
    return diff

"""Versioned benchmark artifacts (``BENCH_*.json``).

A :class:`PerfReport` is the machine-readable sibling of the text
tables under ``benchmarks/results/``: one record per benchmark run,
each splitting its measurements into two domains —

``cycles``
    Symbol-cycle fidelity metrics (total cycles, speedup, flow
    dynamics, switching/decode overheads, SVC traffic, event
    amplification).  Deterministic given the same configuration and
    seeds, so comparisons are exact.

``wall``
    Host wall-clock timings, warmup + repeats summarized as
    median/MAD.  Noisy by nature, so comparisons are statistical.

The schema carries ``schema_version`` so future PRs can evolve the
layout without silently mis-reading old baselines.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ArtifactError
from repro.perf.measure import WallClockStats
from repro.sim.runner import BenchmarkRun, geometric_mean

SCHEMA_VERSION = 1

#: Metric names whose drift is a *fidelity* regression (exact compare).
CYCLE_DOMAIN = "cycles"
#: Metric names compared statistically (median/MAD with tolerance).
WALL_DOMAIN = "wall"


def run_key(name: str, ranks: int, suffix: str = "") -> str:
    """Canonical record key for one benchmark x configuration."""
    key = f"{name}@r{ranks}"
    return f"{key}/{suffix}" if suffix else key


@dataclass(frozen=True)
class BenchmarkRecord:
    """One benchmark's measurements inside a :class:`PerfReport`."""

    key: str
    name: str
    ranks: int
    trace_bytes: int
    cycles: dict
    wall: WallClockStats | None = None
    telemetry: dict | None = None
    """Per-segment quantile summaries (``BenchmarkRun.telemetry_dict``).
    Carried for reading trends, never compared: summaries would turn
    cycle-exact comparisons into fuzzy ones, and old baselines lack
    them entirely."""

    @classmethod
    def from_run(
        cls,
        run: BenchmarkRun,
        *,
        key: str | None = None,
        suffix: str = "",
        wall: WallClockStats | None = None,
    ) -> "BenchmarkRecord":
        payload = run.to_dict()
        return cls(
            key=key or run_key(run.name, run.ranks, suffix),
            name=run.name,
            ranks=run.ranks,
            trace_bytes=run.trace_bytes,
            cycles=payload["cycles"],
            wall=wall,
            telemetry=run.telemetry_dict(),
        )

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "ranks": self.ranks,
            "trace_bytes": self.trace_bytes,
            "cycles": dict(sorted(self.cycles.items())),
        }
        if self.wall is not None:
            out["wall"] = self.wall.to_dict()
        if self.telemetry is not None:
            out["telemetry"] = dict(sorted(self.telemetry.items()))
        return out

    @classmethod
    def from_dict(cls, key: str, payload: dict) -> "BenchmarkRecord":
        try:
            wall = payload.get("wall")
            telemetry = payload.get("telemetry")
            return cls(
                key=key,
                name=payload["name"],
                ranks=int(payload["ranks"]),
                trace_bytes=int(payload["trace_bytes"]),
                cycles=dict(payload["cycles"]),
                wall=WallClockStats.from_dict(wall) if wall else None,
                telemetry=dict(telemetry) if telemetry else None,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ArtifactError(
                f"malformed benchmark record {key!r}: {error}"
            ) from error

    @property
    def speedup(self) -> float:
        return float(self.cycles.get("speedup", 0.0))


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
    }


@dataclass
class PerfReport:
    """A labeled set of benchmark records — one ``BENCH_*.json``."""

    label: str
    benchmarks: dict[str, BenchmarkRecord] = field(default_factory=dict)
    parameters: dict = field(default_factory=dict)
    environment: dict = field(default_factory=_environment)
    created_at: str = field(
        default_factory=lambda: time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        )
    )
    schema_version: int = SCHEMA_VERSION

    def add(self, record: BenchmarkRecord) -> None:
        self.benchmarks[record.key] = record

    @property
    def geomean_speedup(self) -> float | None:
        speedups = [
            record.speedup
            for record in self.benchmarks.values()
            if record.speedup > 0
        ]
        if not speedups:
            return None
        return geometric_mean(speedups)

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "label": self.label,
            "created_at": self.created_at,
            "environment": dict(sorted(self.environment.items())),
            "parameters": dict(sorted(self.parameters.items())),
            "summary": {
                "benchmarks": len(self.benchmarks),
                "geomean_speedup": self.geomean_speedup,
            },
            "benchmarks": {
                key: self.benchmarks[key].to_dict()
                for key in sorted(self.benchmarks)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PerfReport":
        if not isinstance(payload, dict):
            raise ArtifactError(
                "artifact root must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ArtifactError(
                f"unsupported artifact schema_version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        try:
            raw = payload["benchmarks"]
            if not isinstance(raw, dict):
                raise ArtifactError(
                    "artifact 'benchmarks' must be an object keyed by "
                    "record name"
                )
            report = cls(
                label=payload["label"],
                parameters=dict(payload.get("parameters", {})),
                environment=dict(payload.get("environment", {})),
                created_at=payload.get("created_at", ""),
                schema_version=version,
            )
        except (KeyError, TypeError) as error:
            raise ArtifactError(f"malformed artifact: {error}") from error
        for key, record in raw.items():
            report.add(BenchmarkRecord.from_dict(key, record))
        return report

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return path


def load_report(path: str | Path) -> PerfReport:
    """Read one ``BENCH_*.json`` artifact, raising :class:`ArtifactError`
    on a missing file, invalid JSON, or schema mismatch."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ArtifactError(
            f"cannot read artifact {str(path)!r}: {error}"
        ) from error
    except ValueError as error:
        raise ArtifactError(
            f"artifact {str(path)!r} is not valid JSON: {error}"
        ) from error
    return PerfReport.from_dict(payload)


def report_from_runs(
    runs: dict[str, BenchmarkRun],
    *,
    label: str,
    parameters: dict | None = None,
) -> PerfReport:
    """Serialization hook for sweeps and cached suites: wrap a mapping
    of named :class:`BenchmarkRun` results (no wall-clock stats)."""
    report = PerfReport(label=label, parameters=parameters or {})
    for key, run in runs.items():
        report.add(BenchmarkRecord.from_run(run, key=str(key)))
    return report

"""Flow planning: packing enumeration units into AP flows.

Connected-component merging (Section 3.3.1): the AP executes any number
of simultaneous transitions per cycle, so units whose state spaces can
never overlap — units from *different* connected components — share one
flow and are separated afterwards by masking end states and reports with
per-component state sets.  Packing follows the paper's Figure 4: within
each component the units are stacked vertically, and flow ``j`` takes
the ``j``-th unit of every component, so the flow count equals the
*maximum* number of units in any single component.

The Active State Group (Section 3.3.2) runs as one dedicated,
always-true flow per segment; see :mod:`repro.core.scheduler` for its
execution semantics and :mod:`repro.automata.analysis` for membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.enumeration import EnumerationUnit


@dataclass(frozen=True)
class PlannedFlow:
    """One flow of one segment: a set of units from distinct components."""

    flow_id: int
    units: tuple[EnumerationUnit, ...]

    def initial_current(self) -> frozenset[int]:
        members: set[int] = set()
        for unit in self.units:
            members.update(unit.members)
        return frozenset(members)

    def components(self) -> frozenset[int]:
        return frozenset(unit.component for unit in self.units)


@dataclass(frozen=True)
class FlowReductionStats:
    """The Figure 9 waterfall for one segment plan."""

    flows_in_range: int
    flows_after_cc: int
    flows_after_parent: int
    planned_flows: int


@dataclass
class FlowPlan:
    """All enumeration flows of one segment plus reduction statistics."""

    flows: list[PlannedFlow] = field(default_factory=list)
    stats: FlowReductionStats = FlowReductionStats(0, 0, 0, 0)


def pack_flows(
    units: list[EnumerationUnit],
    *,
    range_size: int,
    merge_by_component: bool = True,
) -> FlowPlan:
    """Pack ``units`` into flows.

    With component merging, one flow holds at most one unit per
    component (Figure 4's vertical lines); without it every unit is its
    own flow.  The returned stats report the canonical waterfall
    independent of the toggles actually used: paths in the range, after
    CC-only merging, and after CC + parent merging.
    """
    by_component: dict[int, list[EnumerationUnit]] = {}
    for unit in units:
        by_component.setdefault(unit.component, []).append(unit)

    range_per_component: dict[int, set[int]] = {}
    for unit in units:
        range_per_component.setdefault(unit.component, set()).update(unit.members)

    flows_after_cc = max(
        (len(members) for members in range_per_component.values()), default=0
    )
    flows_after_parent = max(
        (len(group) for group in by_component.values()), default=0
    )

    flows: list[PlannedFlow] = []
    if merge_by_component:
        depth = flows_after_parent
        for level in range(depth):
            stacked = tuple(
                group[level]
                for _, group in sorted(by_component.items())
                if level < len(group)
            )
            flows.append(PlannedFlow(flow_id=level, units=stacked))
    else:
        flows = [
            PlannedFlow(flow_id=index, units=(unit,))
            for index, unit in enumerate(units)
        ]

    return FlowPlan(
        flows=flows,
        stats=FlowReductionStats(
            flows_in_range=range_size,
            flows_after_cc=flows_after_cc,
            flows_after_parent=flows_after_parent,
            planned_flows=len(flows),
        ),
    )

"""Deploying a PAP plan onto the modeled board.

The scheduler reasons about segments abstractly; this module performs
the physical side: one FSM replica per input segment, each placed on a
disjoint half-core group (components never split across half-cores —
the routing matrix has no inter-half-core paths), with every segment's
flows bound to state-vector-cache slots on its replica's device.

Deployment validates the resource claims behind Table 1's segment
counts: ``segments = floor(board half-cores / FSM half-cores)`` is only
legal because the replicas actually fit, and the 512-entry state-vector
cache bounds the planned flows per segment (Section 5.1 calls the flow
reductions "essential" precisely for this reason).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.ap.device import Board
from repro.ap.placement import Placement, place_automaton
from repro.ap.state_vector import StateVector
from repro.core.pap import PAPPlan
from repro.core.scheduler import ASG_FLOW_ID
from repro.errors import CapacityError, PlacementError


@dataclass(frozen=True)
class SegmentDeployment:
    """Where one segment's replica lives."""

    segment_index: int
    first_half_core: int
    placement: Placement
    device_index: int
    flow_slots: tuple[int, ...]


@dataclass(frozen=True)
class Deployment:
    """A full plan mapped onto a board."""

    segments: tuple[SegmentDeployment, ...]

    @property
    def half_cores_used(self) -> int:
        return sum(s.placement.half_cores for s in self.segments)


def deploy_plan(
    board: Board,
    automaton: Automaton,
    plan: PAPPlan,
    *,
    analysis: AutomatonAnalysis | None = None,
    lint: bool = True,
    placement: Placement | None = None,
) -> Deployment:
    """Place one replica per segment and bind flows to cache slots.

    Runs the structural lint gate first (opt out with ``lint=False``);
    error-level diagnostics raise :class:`~repro.errors.LintError`
    before any half-core is programmed.  Raises
    :class:`PlacementError` when the replicas do not fit the board and
    :class:`CapacityError` when a segment plans more flows than its
    device's state-vector cache holds.

    ``placement`` supplies a pre-computed per-replica placement — e.g.
    one constructed by :func:`repro.analyze.planner.plan_capacity`
    (``CapacityPlan.to_placement()``) — instead of re-packing here.
    The board still validates every STE load when the replica is
    programmed, so a bad external placement fails loudly, not subtly.
    """
    analysis = analysis or AutomatonAnalysis(automaton)
    if lint:
        # Imported here: repro.lint depends on repro.core helpers, so a
        # module-level import would be circular.
        from repro.lint.registry import LintConfig
        from repro.lint.runner import lint_gate

        lint_gate(
            automaton,
            config=LintConfig(
                geometry=board.geometry,
                max_flows=board.geometry.state_vector_cache_entries or 1,
            ),
            analysis=analysis,
        )
    if placement is None:
        placement = place_automaton(
            automaton,
            capacity=board.geometry.stes_per_half_core,
            analysis=analysis,
        )
    needed = placement.half_cores * len(plan.segments)
    if needed > board.num_half_cores:
        raise PlacementError(
            f"{len(plan.segments)} replicas x {placement.half_cores} "
            f"half-cores need {needed}, board has {board.num_half_cores}"
        )

    deployments = []
    next_half_core = 0
    per_device = board.geometry.half_cores_per_device
    for segment_plan in plan.segments:
        board.load_automaton(
            automaton,
            placement=placement,
            first_half_core=next_half_core,
            analysis=analysis,
        )
        device_index = next_half_core // per_device
        device = board.devices[device_index]
        cache = device.state_vector_cache

        # Bind flows: the ASG flow plus each planned enumeration flow.
        slots = []
        flow_ids = [] if segment_plan.is_golden else [ASG_FLOW_ID]
        flow_ids.extend(flow.flow_id for flow in segment_plan.flows)
        if len(flow_ids) > cache.capacity - cache.occupied():
            raise CapacityError(
                f"segment {segment_plan.segment.index} plans "
                f"{len(flow_ids)} flows; device {device_index}'s state "
                f"vector cache has {cache.capacity - cache.occupied()} "
                "free slots"
            )
        base = cache.occupied()
        for offset, flow_id in enumerate(flow_ids):
            slot = base + offset
            initial = (
                segment_plan.asg_initial
                if flow_id == ASG_FLOW_ID
                else next(
                    flow.initial_current()
                    for flow in segment_plan.flows
                    if flow.flow_id == flow_id
                )
            )
            cache.save(slot, StateVector(active=frozenset(initial)))
            slots.append(slot)

        deployments.append(
            SegmentDeployment(
                segment_index=segment_plan.segment.index,
                first_half_core=next_half_core,
                placement=placement,
                device_index=device_index,
                flow_slots=tuple(slots),
            )
        )
        next_half_core += placement.half_cores
    return Deployment(segments=tuple(deployments))

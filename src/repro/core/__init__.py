"""The paper's contribution: parallel NFA execution on the AP."""

from repro.core.composition import ComposedSegment, compose_segment, unit_truth_map
from repro.core.config import DEFAULT_CONFIG, PAPConfig
from repro.core.deployment import Deployment, SegmentDeployment, deploy_plan
from repro.core.enumeration import EnumerationUnit, build_units
from repro.core.merging import (
    FlowPlan,
    FlowReductionStats,
    PlannedFlow,
    pack_flows,
)
from repro.core.metrics import PAPRunResult
from repro.core.pap import PAPPlan, ParallelAutomataProcessor
from repro.core.partitioning import InputSegment, partition_input
from repro.core.ranges import (
    PartitionSymbolChoice,
    RangeProfile,
    choose_partition_symbol,
    enumeration_range,
    range_profile,
)
from repro.core.scheduler import (
    ASG_FLOW_ID,
    GOLDEN_FLOW_ID,
    SegmentMetrics,
    SegmentPlan,
    SegmentResult,
    SegmentScheduler,
)
from repro.core.speculation import (
    SegmentSpeculation,
    SpeculativeAutomataProcessor,
    SpeculativeRunResult,
)

__all__ = [
    "ASG_FLOW_ID",
    "ComposedSegment",
    "DEFAULT_CONFIG",
    "Deployment",
    "EnumerationUnit",
    "FlowPlan",
    "FlowReductionStats",
    "GOLDEN_FLOW_ID",
    "InputSegment",
    "PAPConfig",
    "PAPPlan",
    "PAPRunResult",
    "ParallelAutomataProcessor",
    "PartitionSymbolChoice",
    "PlannedFlow",
    "RangeProfile",
    "SegmentDeployment",
    "SegmentMetrics",
    "SegmentPlan",
    "SegmentResult",
    "SegmentScheduler",
    "SegmentSpeculation",
    "SpeculativeAutomataProcessor",
    "SpeculativeRunResult",
    "build_units",
    "deploy_plan",
    "choose_partition_symbol",
    "compose_segment",
    "enumeration_range",
    "pack_flows",
    "partition_input",
    "range_profile",
    "unit_truth_map",
]

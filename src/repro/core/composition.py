"""Host-side composition of segment results (Section 3.4).

After a segment finishes, the host reads its final state vector,
decides which enumeration units were *true* (all members inside the
previous segment's final matched set), filters the segment's buffered
report events down to true ones, and reconstructs the segment's own
final matched set ``M`` for the next segment's composition:

    M = ASG-flow final current
        UNION over true units u of (final current of u's last flow,
                                     masked to u's connected component)

Event truth is decided per (flow, component, offset): an event is true
when some true unit of that component was assigned to the emitting flow
at or before the event's offset (units move between flows only at
convergence points, where both flows' futures are provably identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.execution import Report
from repro.core.scheduler import (
    ASG_FLOW_ID,
    GOLDEN_FLOW_ID,
    PlannedFlow,
    SegmentResult,
)
from repro.errors import CompositionError


def unit_truth_map(
    result_plan_units: Iterable[PlannedFlow],
    previous_matched: frozenset[int],
) -> dict[int, bool]:
    """Truth verdict for every unit of a segment plan."""
    return {
        unit.unit_id: unit.is_true(previous_matched)
        for flow in result_plan_units
        for unit in flow.units
    }


@dataclass(frozen=True)
class ComposedSegment:
    """Composition outcome of one segment."""

    true_reports: frozenset[Report]
    final_matched: frozenset[int]
    true_events: int
    raw_events: int

    @property
    def false_events(self) -> int:
        return self.raw_events - self.true_events


def compose_segment(
    result: SegmentResult,
    unit_truth: dict[int, bool],
    analysis: AutomatonAnalysis,
) -> ComposedSegment:
    """Filter one segment's events and rebuild its final matched set."""
    if result.plan.is_golden:
        reports = frozenset(
            event.to_report() for event in result.events
        )
        return ComposedSegment(
            true_reports=reports,
            final_matched=result.final_currents[GOLDEN_FLOW_ID],
            true_events=len(result.events),
            raw_events=len(result.events),
        )

    units_by_id = {
        unit.unit_id: unit
        for flow in result.plan.flows
        for unit in flow.units
    }
    component_of = analysis.component_index()

    # (flow, component) -> earliest offset from which a true unit's
    # results flow through that flow.
    true_from: dict[tuple[int, int], int] = {}
    for unit_id, assignments in result.unit_history.items():
        if not unit_truth.get(unit_id, False):
            continue
        component = units_by_id[unit_id].component
        for flow_id, from_offset in assignments:
            key = (flow_id, component)
            if key not in true_from or from_offset < true_from[key]:
                true_from[key] = from_offset

    true_reports: set[Report] = set()
    true_events = 0
    for event in result.events:
        if event.flow_id == ASG_FLOW_ID:
            true_reports.add(event.to_report())
            true_events += 1
            continue
        key = (event.flow_id, component_of[event.element])
        threshold = true_from.get(key)
        if threshold is not None and event.offset >= threshold:
            true_reports.add(event.to_report())
            true_events += 1

    # Rebuild M: ASG current plus true units' component-masked currents.
    components = analysis.connected_components()
    matched: set[int] = set(result.asg_final)
    for unit_id, truthful in unit_truth.items():
        if not truthful:
            continue
        unit = units_by_id.get(unit_id)
        if unit is None:
            raise CompositionError(f"truth verdict for unknown unit {unit_id}")
        last_flow, _ = result.unit_history[unit_id][-1]
        final = result.final_currents.get(last_flow, frozenset())
        matched.update(final & components[unit.component])

    return ComposedSegment(
        true_reports=frozenset(true_reports),
        final_matched=frozenset(matched),
        true_events=true_events,
        raw_events=len(result.events),
    )

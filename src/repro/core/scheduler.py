"""Time-division-multiplexed execution of one input segment.

Every segment owns one FSM replica (one half-core group) and runs its
flows in TDM steps (Section 3.2): each active flow processes ``k``
symbols, pays the 3-cycle context switch, and yields.  Around that loop
the scheduler implements the paper's dynamic machinery:

* **deactivation checks** (Section 3.3.4) at every context switch, plus
  finer-grained checks inside the first TDM step (most false flows die
  within ~20 symbols);
* **convergence checks** (Section 3.3.3) every ``convergence_period``
  TDM steps — flows with identical state vectors merge, the survivor
  inheriting the loser's enumeration units (recorded in the unit
  assignment history so report truth can be decided per offset);
* **flow invalidation** (Section 3.4): when the previous segment's
  results arrive (at a wall-clock time the orchestrator supplies), all
  still-running false flows are killed.

Flow semantics: every flow — the ASG flow and each enumeration flow —
executes the *full* automaton semantics with the path-independent
states persistently enabled, exactly like the real machine, where the
routing matrix is shared and always-active states fire in every flow.
An enumeration flow's state vector is therefore always a superset of
the ASG flow's, and two key dynamics emerge exactly as in the paper:

* enumeration flows whose unit-specific states wash out *converge*
  with each other even in automata whose hubs keep re-triggering
  patterns (SPM, Dotstar) — the dominant reduction there;
* a flow that converges *with the ASG flow* carries no information
  beyond the always-true flow and is deactivated; for automata with no
  always-active states the ASG vector is empty and this degenerates to
  the paper's compare-against-the-zero-mask check (RandomForest-style
  benchmarks, where deactivation dominates).

The scheduler is purely per-segment; truth decisions and cross-segment
timing live in :mod:`repro.core.composition` and :mod:`repro.core.pap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import TYPE_CHECKING

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.execution import CompiledAutomaton, FlowExecution
from repro.ap.events import OutputEvent, OutputEventBuffer
from repro.ap.state_vector import StateVector, StateVectorCache
from repro.core.config import PAPConfig
from repro.core.merging import FlowReductionStats, PlannedFlow
from repro.core.partitioning import InputSegment
from repro.errors import ConfigurationError
from repro.obs.phases import (
    PHASE_CONVERGENCE,
    PHASE_SWITCH,
    PHASE_TRANSITION,
)
from repro.obs.tracer import NULL_OBSERVER, Observer

if TYPE_CHECKING:
    from repro.automata.vector import VectorFlowExecution

    AnyFlowExecution = FlowExecution | VectorFlowExecution

#: Flow-stepping strategies a scheduler can run.  Both are bit-exact in
#: the cycle domain — reports, transitions and state vectors are
#: byte-identical — they differ only in host wall-clock (see
#: :mod:`repro.automata.vector` for the crossover).
STRATEGY_NAMES = ("set", "vector")

ASG_FLOW_ID = -1
GOLDEN_FLOW_ID = -2


@dataclass(frozen=True)
class SegmentPlan:
    """Everything known about a segment before execution."""

    segment: InputSegment
    flows: tuple[PlannedFlow, ...]
    stats: FlowReductionStats
    asg_initial: frozenset[int]
    is_golden: bool

    @property
    def num_units(self) -> int:
        return sum(len(flow.units) for flow in self.flows)


@dataclass
class SegmentMetrics:
    """Cycle and event accounting for one segment's execution."""

    symbol_cycles: int = 0
    context_switch_cycles: int = 0
    convergence_check_cycles: int = 0
    """Cycles spent on in-line convergence comparisons (zero when the
    checks are overlapped with symbol processing, Section 3.3.3)."""
    finish_cycles: int = 0
    tdm_steps: int = 0
    convergence_comparisons: int = 0
    convergence_merges: int = 0
    deactivations: int = 0
    fiv_invalidations: int = 0
    fiv_applied_at: int | None = None
    active_flow_samples: list[int] = field(default_factory=list)
    raw_events: int = 0
    transitions: int = 0
    flows_at_end: int = 0
    enum_flows_at_end: int = 0
    svc_stats: dict[str, int] = field(default_factory=dict)
    """State-vector-cache counters (see ``StateVectorCache.stats``)."""

    @property
    def average_active_flows(self) -> float:
        if not self.active_flow_samples:
            return 0.0
        return sum(self.active_flow_samples) / len(self.active_flow_samples)

    @property
    def switching_overhead(self) -> float:
        """Fraction of segment cycles spent context switching (Fig. 10)."""
        if self.finish_cycles == 0:
            return 0.0
        return self.context_switch_cycles / self.finish_cycles


@dataclass
class SegmentResult:
    """Execution outcome of one segment."""

    plan: SegmentPlan
    events: list[OutputEvent]
    unit_history: dict[int, list[tuple[int, int]]]
    """unit id -> [(flow id, valid-from input offset), ...]."""
    final_currents: dict[int, frozenset[int]]
    asg_final: frozenset[int]
    metrics: SegmentMetrics


@dataclass
class _RuntimeFlow:
    flow_id: int
    execution: "AnyFlowExecution"
    unit_ids: list[int]
    kind: str  # "enum" | "asg" | "golden"
    alive: bool = True


class SegmentScheduler:
    """Runs segments of one automaton under one configuration.

    ``strategy`` selects how flows step: ``"set"`` is the active-set
    walk of :class:`FlowExecution`; ``"vector"`` the bit-parallel
    executor of :mod:`repro.automata.vector`.  The scheduler only ever
    touches the shared flow surface (``run`` / ``reports`` /
    ``transitions`` / ``state_vector``), so every cycle-domain decision
    — deactivation, convergence, SVC traffic, metrics — is strategy-
    invariant by construction.
    """

    def __init__(
        self,
        compiled: CompiledAutomaton,
        analysis: AutomatonAnalysis,
        config: PAPConfig,
        path_independent: frozenset[int],
        observer: Observer | None = None,
        *,
        strategy: str = "set",
    ) -> None:
        if strategy not in STRATEGY_NAMES:
            raise ConfigurationError(
                f"unknown flow strategy {strategy!r} "
                f"(expected one of {', '.join(STRATEGY_NAMES)})"
            )
        self.compiled = compiled
        self.analysis = analysis
        self.config = config
        self.path_independent = path_independent
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.strategy = strategy

    def _new_flow(self, **kwargs: object) -> "AnyFlowExecution":
        """One flow execution under the configured stepping strategy."""
        if self.strategy == "vector":
            from repro.automata.vector import VectorFlowExecution

            return VectorFlowExecution(self.compiled, **kwargs)  # type: ignore[arg-type]
        return FlowExecution(self.compiled, **kwargs)  # type: ignore[arg-type]

    # -- public API --------------------------------------------------------

    def run_segment(
        self,
        data: bytes,
        plan: SegmentPlan,
        *,
        unit_truth: dict[int, bool] | None = None,
        fiv_time: int | None = None,
    ) -> SegmentResult:
        """Execute one segment.

        ``unit_truth``/``fiv_time`` describe the flow-invalidation vector
        the previous segment will send: at the first TDM boundary at or
        past ``fiv_time`` (segment-local cycles), flows whose units are
        all false are invalidated.
        """
        if plan.is_golden:
            return self._run_golden(data, plan)
        return self._run_enumerated(data, plan, unit_truth, fiv_time)

    def _observe_segment(self, metrics: SegmentMetrics) -> None:
        """Feed segment-end distributions into the metrics registry.

        These power the OpenMetrics quantile summaries (p50/p95/p99 of
        segment latency and flow survival).  Under the null observer
        the registry hands back shared no-op instruments, so the cost
        is two calls per *segment* — nowhere near the per-symbol path.
        """
        registry = self.observer.metrics
        registry.histogram("segment.finish_cycles").observe(
            metrics.finish_cycles
        )
        registry.histogram("segment.flows_at_end").observe(
            metrics.flows_at_end
        )

    # -- golden (first) segment ---------------------------------------------

    def _run_golden(self, data: bytes, plan: SegmentPlan) -> SegmentResult:
        segment = plan.segment
        obs = self.observer
        track = f"seg{segment.index}"
        span = obs.begin_span(
            f"segment[{segment.index}]",
            track=track,
            cycle=0,
            args={
                "kind": "golden",
                "start": segment.start,
                "end": segment.end,
            },
        )
        execution = self._new_flow()
        phases = obs.phases
        if phases.enabled:
            wall0 = perf_counter_ns()
            execution.run(data[segment.start : segment.end], segment.start)
            phases.add(
                PHASE_TRANSITION,
                segment.index,
                perf_counter_ns() - wall0,
            )
        else:
            execution.run(data[segment.start : segment.end], segment.start)
        buffer = OutputEventBuffer(observer=obs, track=track)
        buffer.push_all(execution.reports, GOLDEN_FLOW_ID)
        events = buffer.drain()
        metrics = SegmentMetrics(
            symbol_cycles=segment.length,
            finish_cycles=segment.length,
            tdm_steps=1,
            active_flow_samples=[1],
            raw_events=buffer.raw_events,
            transitions=execution.transitions,
            flows_at_end=1,
        )
        obs.end_span(
            span,
            cycle=segment.length,
            args={"raw_events": metrics.raw_events},
        )
        self._observe_segment(metrics)
        return SegmentResult(
            plan=plan,
            events=events,
            unit_history={},
            final_currents={GOLDEN_FLOW_ID: execution.state_vector()},
            asg_final=frozenset(),
            metrics=metrics,
        )

    # -- enumerated segments ---------------------------------------------------

    def _make_flows(self, plan: SegmentPlan) -> list[_RuntimeFlow]:
        """ASG flow (when the automaton has path-independent states)
        plus one flow per planned enumeration flow.

        Every flow runs full semantics: persistent path-independent
        states, seeded with the boundary-matched path-independent set —
        enumeration flows additionally seed their units' members.  This
        keeps each enumeration vector a superset of the ASG vector.
        """
        flows: list[_RuntimeFlow] = []
        if self.path_independent:
            flows.append(
                _RuntimeFlow(
                    flow_id=ASG_FLOW_ID,
                    execution=self._new_flow(
                        initial_current=plan.asg_initial,
                        persistent=self.path_independent,
                        one_shot=frozenset(),
                    ),
                    unit_ids=[],
                    kind="asg",
                )
            )
        for planned in plan.flows:
            flows.append(
                _RuntimeFlow(
                    flow_id=planned.flow_id,
                    execution=self._new_flow(
                        initial_current=(
                            planned.initial_current() | plan.asg_initial
                        ),
                        persistent=self.path_independent,
                        one_shot=frozenset(),
                    ),
                    unit_ids=[unit.unit_id for unit in planned.units],
                    kind="enum",
                )
            )
        return flows

    def _run_enumerated(
        self,
        data: bytes,
        plan: SegmentPlan,
        unit_truth: dict[int, bool] | None,
        fiv_time: int | None,
    ) -> SegmentResult:
        config = self.config
        segment = plan.segment
        obs = self.observer
        track = f"seg{segment.index}"
        flows = self._make_flows(plan)
        metrics = SegmentMetrics()
        history: dict[int, list[tuple[int, int]]] = {}
        for planned in plan.flows:
            for unit in planned.units:
                history[unit.unit_id] = [(planned.flow_id, segment.start)]

        span = obs.begin_span(
            f"segment[{segment.index}]",
            track=track,
            cycle=0,
            args={
                "kind": "enumerated",
                "start": segment.start,
                "end": segment.end,
                "flows": len(flows),
                "units": plan.num_units,
            },
        )
        # Every flow — ASG included — owns one state-vector-cache slot;
        # the capacity is widened for over-capacity plans (the overflow
        # itself is already flagged as ``PAPRunResult.svc_overflow``).
        svc = StateVectorCache(capacity=max(config.max_flows, len(flows)))
        obs.metrics.counter("flows.spawned").inc(len(flows))
        for flow in flows:
            svc.save(
                flow.flow_id,
                StateVector(active=flow.execution.state_vector()),
            )
            if obs.enabled:
                obs.instant(
                    "flow-spawn",
                    track=track,
                    cycle=0,
                    args={
                        "flow": flow.flow_id,
                        "kind": flow.kind,
                        "units": len(flow.unit_ids),
                    },
                )

        fiv_pending = (
            config.use_fiv and fiv_time is not None and unit_truth is not None
        )
        position = segment.start
        time = 0
        step = 0
        slice_symbols = config.tdm_slice_symbols
        switch_cost = config.timing.context_switch_cycles

        # Wall-domain phase accounting (repro.obs.phases).  Disabled,
        # this is one attribute read here and plain branches below —
        # the clock is never touched.  Enabled, costs accumulate into
        # locals and flush to the recorder once per segment.
        phases = obs.phases
        profiling = phases.enabled
        wall_transition = wall_switch = wall_convergence = 0

        while position < segment.end:
            length = min(slice_symbols, segment.end - position)
            live = [flow for flow in flows if flow.alive]
            pay_switch = len(live) > 1
            # The ASG flow (first when present) runs first; its vector
            # trajectory is the deactivation reference for this slice.
            asg_snapshots: dict[int, frozenset[int]] = {}
            for flow in live:
                if flow.kind != "asg":
                    continue
                if pay_switch and step > 0:
                    if profiling:
                        wall0 = perf_counter_ns()
                        svc.restore(flow.flow_id)
                        wall_switch += perf_counter_ns() - wall0
                    else:
                        svc.restore(flow.flow_id)
                if profiling:
                    wall0 = perf_counter_ns()
                consumed = self._process_asg_slice(
                    flow,
                    data,
                    position,
                    length,
                    asg_snapshots,
                    first_step=step == 0,
                )
                if profiling:
                    wall_transition += perf_counter_ns() - wall0
                time += consumed + (switch_cost if pay_switch else 0)
            asg_end = asg_snapshots.get(length, frozenset())
            for flow in live:
                if flow.kind == "asg" and pay_switch:
                    if profiling:
                        wall0 = perf_counter_ns()
                        svc.save(flow.flow_id, StateVector(active=asg_end))
                        wall_switch += perf_counter_ns() - wall0
                    else:
                        svc.save(flow.flow_id, StateVector(active=asg_end))
                if flow.kind != "enum":
                    continue
                if pay_switch and step > 0:
                    if profiling:
                        wall0 = perf_counter_ns()
                        svc.restore(flow.flow_id)
                        wall_switch += perf_counter_ns() - wall0
                    else:
                        svc.restore(flow.flow_id)
                if profiling:
                    wall0 = perf_counter_ns()
                consumed = self._process_slice(
                    flow,
                    data,
                    position,
                    length,
                    asg_snapshots,
                    history,
                    metrics,
                    first_step=step == 0,
                    svc=svc,
                    time_base=time,
                    track=track,
                )
                if profiling:
                    wall_transition += perf_counter_ns() - wall0
                time += consumed + (switch_cost if pay_switch else 0)
                if flow.alive and (config.use_deactivation or pay_switch):
                    if profiling:
                        wall0 = perf_counter_ns()
                    vector = flow.execution.state_vector()
                    if config.use_deactivation and vector == asg_end:
                        self._deactivate(
                            flow,
                            position + length,
                            history,
                            metrics,
                            svc=svc,
                            cycle=time,
                            track=track,
                        )
                    elif pay_switch:
                        svc.save(
                            flow.flow_id, StateVector(active=vector)
                        )
                    if profiling:
                        wall_switch += perf_counter_ns() - wall0
            position += length
            step += 1
            metrics.tdm_steps = step
            metrics.active_flow_samples.append(len(live))
            if obs.enabled:
                obs.counter(
                    "active_flows", len(live), track=track, cycle=time
                )
                obs.counter(
                    "svc_occupied", svc.occupied(), track=track, cycle=time
                )

            if fiv_pending and time >= fiv_time:
                if profiling:
                    wall0 = perf_counter_ns()
                fiv_pending = False
                metrics.fiv_applied_at = time
                assert unit_truth is not None
                for flow in flows:
                    if (
                        flow.alive
                        and flow.kind == "enum"
                        and not any(unit_truth.get(u, False) for u in flow.unit_ids)
                    ):
                        flow.alive = False
                        metrics.fiv_invalidations += 1
                        svc.invalidate(flow.flow_id)
                        obs.metrics.counter("flows.fiv_killed").inc()
                        if obs.enabled:
                            obs.instant(
                                "flow-fiv-kill",
                                track=track,
                                cycle=time,
                                args={"flow": flow.flow_id},
                            )
                if obs.enabled:
                    obs.instant(
                        "fiv-applied",
                        track=track,
                        cycle=time,
                        args={"killed": metrics.fiv_invalidations},
                    )
                if profiling:
                    wall_switch += perf_counter_ns() - wall0

            if (
                config.use_convergence
                and step % config.convergence_period_steps == 0
            ):
                before = metrics.convergence_comparisons
                if profiling:
                    wall0 = perf_counter_ns()
                self._converge(
                    flows,
                    position,
                    history,
                    metrics,
                    svc=svc,
                    cycle=time,
                    track=track,
                )
                if profiling:
                    wall_convergence += perf_counter_ns() - wall0
                if not config.timing.convergence_checks_overlapped:
                    # Section 3.3.3: checks *can* be overlapped because
                    # the state vector cache is idle during symbol
                    # processing; modeling them in-line charges one
                    # comparator cycle per pair instead.
                    inline_cycles = (
                        metrics.convergence_comparisons - before
                    ) * config.timing.convergence_check_cycles
                    time += inline_cycles
                    metrics.convergence_check_cycles += inline_cycles

        if profiling:
            index = segment.index
            phases.add(PHASE_TRANSITION, index, wall_transition)
            if wall_switch:
                phases.add(PHASE_SWITCH, index, wall_switch)
            if wall_convergence:
                phases.add(PHASE_CONVERGENCE, index, wall_convergence)

        metrics.symbol_cycles = sum(
            flow.execution.symbols_processed for flow in flows
        )
        # In-line convergence checks are their own cost bucket, not
        # switching overhead (Fig. 10 counts context switches only).
        metrics.context_switch_cycles = (
            time - metrics.symbol_cycles - metrics.convergence_check_cycles
        )
        metrics.finish_cycles = time
        metrics.transitions = sum(flow.execution.transitions for flow in flows)
        metrics.flows_at_end = sum(1 for flow in flows if flow.alive)
        metrics.enum_flows_at_end = sum(
            1 for flow in flows if flow.alive and flow.kind == "enum"
        )
        metrics.svc_stats = svc.stats()

        buffer = OutputEventBuffer(observer=obs, track=track)
        for flow in flows:
            buffer.push_all(flow.execution.reports, flow.flow_id)
        events = buffer.drain()
        metrics.raw_events = buffer.raw_events
        obs.end_span(
            span,
            cycle=metrics.finish_cycles,
            args={
                "flows_at_end": metrics.flows_at_end,
                "raw_events": metrics.raw_events,
                "deactivations": metrics.deactivations,
                "convergence_merges": metrics.convergence_merges,
                "fiv_invalidations": metrics.fiv_invalidations,
            },
        )
        self._observe_segment(metrics)

        final_currents = {
            flow.flow_id: (
                flow.execution.state_vector() if flow.alive else frozenset()
            )
            for flow in flows
            if flow.kind == "enum"
        }
        asg_final = frozenset()
        for flow in flows:
            if flow.kind == "asg":
                asg_final = flow.execution.state_vector()
        return SegmentResult(
            plan=plan,
            events=events,
            unit_history=history,
            final_currents=final_currents,
            asg_final=asg_final,
            metrics=metrics,
        )

    def _process_asg_slice(
        self,
        flow: _RuntimeFlow,
        data: bytes,
        position: int,
        length: int,
        snapshots: dict[int, frozenset[int]],
        *,
        first_step: bool,
    ) -> int:
        """Run the ASG flow over one slice, snapshotting its vector at
        the offsets where enumeration flows will run early deactivation
        checks (plus the slice end)."""
        chunk = (
            self.config.early_check_symbols
            if (first_step and self.config.use_deactivation)
            else length
        )
        consumed = 0
        while consumed < length:
            take = min(chunk, length - consumed)
            flow.execution.run(
                data[position + consumed : position + consumed + take],
                position + consumed,
            )
            consumed += take
            snapshots[consumed] = flow.execution.state_vector()
        snapshots.setdefault(length, flow.execution.state_vector())
        return length

    def _process_slice(
        self,
        flow: _RuntimeFlow,
        data: bytes,
        position: int,
        length: int,
        asg_snapshots: dict[int, frozenset[int]],
        history: dict[int, list[tuple[int, int]]],
        metrics: SegmentMetrics,
        *,
        first_step: bool,
        svc: StateVectorCache,
        time_base: int,
        track: str,
    ) -> int:
        """Run one enumeration flow over one slice; returns symbols
        consumed.

        In the first TDM step the flow is checked for deactivation every
        ``early_check_symbols`` against the ASG flow's vector at the
        same offset, so unproductive flows stop paying for the full
        slice (Section 3.3.4's early checks: most false flows die within
        ~20 symbols).  ``time_base`` is the segment clock when this
        slice starts (for event timestamps).
        """
        if (
            first_step
            and self.config.use_deactivation
            and self.config.early_check_symbols < length
        ):
            consumed = 0
            chunk = self.config.early_check_symbols
            while consumed < length:
                take = min(chunk, length - consumed)
                flow.execution.run(
                    data[position + consumed : position + consumed + take],
                    position + consumed,
                )
                consumed += take
                reference = asg_snapshots.get(consumed, frozenset())
                if flow.execution.state_vector() == reference:
                    self._deactivate(
                        flow,
                        position + consumed,
                        history,
                        metrics,
                        svc=svc,
                        cycle=time_base + consumed,
                        track=track,
                    )
                    break
            return consumed
        flow.execution.run(data[position : position + length], position)
        return length

    def _deactivate(
        self,
        flow: _RuntimeFlow,
        position: int,
        history: dict[int, list[tuple[int, int]]],
        metrics: SegmentMetrics,
        *,
        svc: StateVectorCache,
        cycle: int,
        track: str,
    ) -> None:
        """Deactivate a flow that converged with the ASG reference.

        Its units' future results are exactly the always-true ASG
        flow's, so the assignment history re-homes them there (composed
        as always-true from ``position`` on).
        """
        flow.alive = False
        metrics.deactivations += 1
        svc.invalidate(flow.flow_id)
        for unit_id in flow.unit_ids:
            history[unit_id].append((ASG_FLOW_ID, position))
        obs = self.observer
        obs.metrics.counter("flows.deactivated").inc()
        if obs.enabled:
            obs.instant(
                "flow-deactivate",
                track=track,
                cycle=cycle,
                args={"flow": flow.flow_id, "offset": position},
            )

    def _converge(
        self,
        flows: list[_RuntimeFlow],
        position: int,
        history: dict[int, list[tuple[int, int]]],
        metrics: SegmentMetrics,
        *,
        svc: StateVectorCache,
        cycle: int,
        track: str,
    ) -> None:
        """Merge live enumeration flows with identical state vectors.

        All live flows sit at the same input position at a TDM boundary,
        so equal vectors imply identical futures.  The survivor (lowest
        flow id) absorbs the merged flows' units; the assignment history
        records from which offset the survivor's events speak for them.
        Comparator invocations are counted (the comparator lives in the
        state-vector cache); their latency is overlapped with symbol
        processing (Section 3.3.3) unless configured otherwise.
        """
        live = [flow for flow in flows if flow.alive and flow.kind == "enum"]
        if len(live) < 2:
            return
        pairs = len(live) * (len(live) - 1) // 2
        metrics.convergence_comparisons += pairs
        svc.comparisons += pairs
        obs = self.observer
        by_vector: dict[frozenset[int], _RuntimeFlow] = {}
        for flow in sorted(live, key=lambda f: f.flow_id):
            vector = flow.execution.state_vector()
            survivor = by_vector.get(vector)
            if survivor is None:
                by_vector[vector] = flow
                continue
            flow.alive = False
            metrics.convergence_merges += 1
            svc.invalidate(flow.flow_id)
            survivor.unit_ids.extend(flow.unit_ids)
            for unit_id in flow.unit_ids:
                history[unit_id].append((survivor.flow_id, position))
            obs.metrics.counter("flows.converged").inc()
            if obs.enabled:
                obs.instant(
                    "flow-converge",
                    track=track,
                    cycle=cycle,
                    args={
                        "survivor": survivor.flow_id,
                        "merged": flow.flow_id,
                        "offset": position,
                    },
                )

"""The Parallel Automata Processor: planning and orchestration.

:class:`ParallelAutomataProcessor` ties the whole Section 3 framework
together (the paper's Figure 7):

1. *Preprocessing* (:meth:`plan`): profile symbol ranges, choose the
   partition symbol, cut the input, build enumeration units
   (common-parent merging), pack them into flows (connected-component
   merging), and compute each segment's ASG seed.
2. *Runtime* (:meth:`run`): execute segments on their half-core groups
   under TDM with deactivation/convergence checks, chain host
   composition segment to segment (truth masking + FIV, overlapped with
   later segments' execution), and fall back to the golden execution if
   enumeration would lose.

The report-set correctness contract: ``run(data).reports`` equals the
sequential baseline's deduplicated report set for *every* automaton and
input — the test suite enforces this with property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.automata.execution import CompiledAutomaton
from repro.ap.placement import place_automaton, segments_available
from repro.core.config import DEFAULT_CONFIG, PAPConfig
from repro.core.enumeration import build_units
from repro.core.merging import FlowReductionStats, pack_flows
from repro.core.metrics import PAPRunResult
from repro.core.partitioning import partition_input
from repro.core.ranges import (
    PartitionSymbolChoice,
    choose_partition_symbol,
    enumeration_range,
)
from repro.core.scheduler import SegmentPlan, SegmentResult
from repro.errors import AdmissionError
from repro.exec.backend import ExecutionBackend, ExecutionContext, resolve_backend
from repro.exec.durability import (
    AdmissionPolicy,
    CheckpointRun,
    CheckpointStore,
    run_fingerprint,
)
from repro.exec.faults import FaultInjector, FaultPlan
from repro.exec.resilience import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    RunHealth,
)
from repro.host.reporting import report_processing_cycles
from repro.obs.phases import summarize_run_phases
from repro.obs.tracer import NULL_OBSERVER, TRACK_HOST, TRACK_RUN, Observer

_EMPTY_STATS = FlowReductionStats(0, 0, 0, 0)


def _live_enumeration_flows(result: SegmentResult) -> int:
    """Enumeration flows still alive at a segment's end (ASG excluded)."""
    if result.plan.is_golden:
        return 0
    return result.metrics.enum_flows_at_end


@dataclass(frozen=True)
class PAPPlan:
    """The preprocessing outcome for one input."""

    segments: tuple[SegmentPlan, ...]
    partition_choice: PartitionSymbolChoice | None

    @property
    def max_planned_flows(self) -> int:
        return max(
            (len(plan.flows) for plan in self.segments), default=0
        )


class ParallelAutomataProcessor:
    """Parallel NFA execution on the modeled AP board.

    Parameters
    ----------
    automaton:
        The homogeneous automaton to accelerate.
    config:
        Board geometry, timing, and optimization toggles.
    half_cores:
        The FSM's half-core footprint.  Defaults to capacity-based
        placement; pass the paper's Table 1 values to reproduce its
        segment counts for the large benchmarks that route poorly.
    lint:
        Run the structural lint gate (:mod:`repro.lint`) before
        accepting the automaton; error-level diagnostics raise
        :class:`~repro.errors.LintError`.  Pass ``False`` to opt out
        (e.g. for deliberately pathological inputs in experiments).
    observer:
        Instrumentation sink (:mod:`repro.obs`).  Defaults to the null
        observer; pass a :class:`~repro.obs.Tracer` to record
        cycle-domain spans, flow lifecycle events, and metrics.
    """

    def __init__(
        self,
        automaton: Automaton,
        *,
        config: PAPConfig = DEFAULT_CONFIG,
        half_cores: int | None = None,
        lint: bool = True,
        observer: Observer | None = None,
    ) -> None:
        self.automaton = automaton
        self.config = config
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.analysis = AutomatonAnalysis(automaton)
        if lint:
            # Imported here: repro.lint depends on repro.core helpers,
            # so a module-level import would be circular.
            from repro.lint.registry import LintConfig
            from repro.lint.runner import lint_gate

            # The structural lint family subsumes Automaton.validate
            # (AP001/AP002/AP003 are its three checks) and raises the
            # richer LintError with the full report attached.
            lint_gate(
                automaton,
                config=LintConfig(
                    geometry=config.geometry, max_flows=config.max_flows
                ),
                analysis=self.analysis,
            )
        self.compiled = CompiledAutomaton(automaton)
        if half_cores is None:
            half_cores = place_automaton(
                automaton, analysis=self.analysis
            ).half_cores
        self.half_cores = half_cores
        # Depth-0 path independence is exact at every input offset; see
        # AutomatonAnalysis.always_active_depths for the depth semantics.
        self.path_independent = self.analysis.path_independent_states(0)

    # -- preprocessing -------------------------------------------------------

    @property
    def num_segments(self) -> int:
        """Parallel segments the configured board supports."""
        return max(
            1, segments_available(self.config.geometry, self.half_cores)
        )

    def plan(self, data: bytes) -> PAPPlan:
        """Range profiling, input partitioning, and flow planning."""
        obs = self.observer
        span = obs.begin_span(
            "plan", track=TRACK_RUN, args={"input_bytes": len(data)}
        )
        result = self._plan(data)
        if obs.enabled:
            obs.metrics.gauge("plan.max_flows").set(
                result.max_planned_flows
            )
            obs.end_span(
                span,
                args={
                    "segments": len(result.segments),
                    "max_planned_flows": result.max_planned_flows,
                    "partition_symbol": (
                        result.partition_choice.symbol
                        if result.partition_choice is not None
                        else None
                    ),
                },
            )
        else:
            obs.end_span(span)
        return result

    def _plan(self, data: bytes) -> PAPPlan:
        if not data:
            return PAPPlan(segments=(), partition_choice=None)
        exclude = (
            self.path_independent if self.config.use_asg else frozenset()
        )
        choice = choose_partition_symbol(
            self.analysis,
            data,
            num_segments=self.num_segments,
            exclude=exclude,
        )
        segments = partition_input(
            data, self.num_segments, symbol=choice.symbol
        )
        plans: list[SegmentPlan] = []
        for segment in segments:
            if segment.index == 0:
                plans.append(
                    SegmentPlan(
                        segment=segment,
                        flows=(),
                        stats=_EMPTY_STATS,
                        asg_initial=frozenset(),
                        is_golden=True,
                    )
                )
                continue
            assert segment.boundary_symbol is not None
            boundary = segment.boundary_symbol
            boundary_at_zero = segment.start == 1
            range_states = enumeration_range(
                self.analysis,
                boundary,
                exclude=exclude,
                boundary_at_offset_zero=boundary_at_zero,
            )
            force_singletons = (
                frozenset(self.automaton.start_of_data_states())
                if boundary_at_zero
                else frozenset()
            )
            units = build_units(
                self.analysis,
                range_states,
                merge_by_parent=self.config.use_common_parent,
                force_singletons=force_singletons,
            )
            flow_plan = pack_flows(
                units,
                range_size=len(range_states),
                merge_by_component=self.config.use_connected_components,
            )
            asg_initial = frozenset(
                sid
                for sid in self.path_independent
                if boundary in self.automaton.state(sid).label
            )
            plans.append(
                SegmentPlan(
                    segment=segment,
                    flows=tuple(flow_plan.flows),
                    stats=flow_plan.stats,
                    asg_initial=asg_initial,
                    is_golden=False,
                )
            )
        return PAPPlan(segments=tuple(plans), partition_choice=choice)

    # -- runtime ----------------------------------------------------------------

    def run(
        self,
        data: bytes,
        *,
        backend: ExecutionBackend | str | None = None,
        workers: int | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        checkpoint: CheckpointStore | str | None = None,
        resume: bool = False,
        admission: AdmissionPolicy | None = None,
    ) -> PAPRunResult:
        """Execute the full PAP pipeline over ``data``.

        ``backend`` selects *where* segments execute (see
        :mod:`repro.exec`): ``None``/``"serial"`` runs them in-process,
        ``"process"`` dispatches them to a pool of ``workers`` host
        processes.  Cycle-domain metrics and report sets are identical
        across backends; only host wall-clock changes.  A backend
        *instance* is reused as-is (its pool survives for the caller to
        close); a name constructs a one-shot backend closed before
        returning.

        ``retry`` governs recovery from segment failures (worker
        crashes, dispatch timeouts, transient errors); the default is
        fail-fast, matching the previous behaviour.  ``faults`` injects
        deterministic failures for resilience testing (see
        :mod:`repro.exec.faults`).  Because segment execution is
        deterministic in the cycle domain, any recovered run — retried,
        timed out and re-dispatched, or degraded to serial execution —
        returns bit-identical reports and cycle metrics; what actually
        happened is recorded in ``result.extra["health"]``.

        ``checkpoint`` (a :class:`~repro.exec.durability.CheckpointStore`
        or a directory path) makes the run *durable*: every completed
        segment result is written through to an append-only, fsync'd
        file keyed by the run's content fingerprint.  With
        ``resume=True`` the run first loads that file and skips every
        segment already proven — including after a ``kill -9`` of a
        previous parent — re-executing only what is missing or failed
        its checksum; resumed runs are bit-exact against cold ones
        (same pure functions, same inputs).  ``admission`` predicts the
        run's peak host memory from the plan before executing anything,
        and either refuses (:class:`~repro.errors.AdmissionError`) or
        bounds how many segments may be in flight at once; the decision
        lands in ``result.extra["health"]["admission"]``.

        Timing follows Section 3.4: the host decode of segment ``j``'s
        final state vector (``T_cpu``) sits on a serial availability
        chain ``A[j] = max(A[j-1], finish[j]) + T_cpu[j]`` because
        segment ``j+1``'s truth needs ``M[j]``.  The chain *skips*
        segments whose successor self-resolved — when every enumeration
        flow of ``j+1`` deactivated or converged away on its own, the
        paper "does not incur this extra invalidation overhead in the
        common case" and ``M[j]`` is never read on the critical path.
        FIV arrival times are computed from the pessimistic
        (always-decode) chain, since the host only builds an FIV while
        the target segment still has live flows.
        """
        obs = self.observer
        run_args: dict[str, Any] = {"input_bytes": len(data)}
        if obs.run_id is not None:
            run_args["run"] = obs.run_id
        run_span = obs.begin_span(
            "run", track=TRACK_RUN, cycle=0, args=run_args
        )
        plan = self.plan(data)
        owns_backend = not isinstance(backend, ExecutionBackend)
        resolved = resolve_backend(backend, workers=workers)
        health = RunHealth(run_id=obs.run_id)
        injector = FaultInjector(faults) if faults is not None else None
        ckpt_run: CheckpointRun | None = None
        if checkpoint is not None:
            store = (
                checkpoint
                if isinstance(checkpoint, CheckpointStore)
                else CheckpointStore(checkpoint)
            )
            fingerprint = run_fingerprint(
                self.automaton,
                self.config,
                data,
                num_segments=len(plan.segments),
            )
            ckpt_run = store.open_run(
                fingerprint,
                resume=resume,
                meta={
                    "automaton": self.automaton.name,
                    "input_bytes": len(data),
                    "segments": len(plan.segments),
                },
            )
            # Into health up front: a crash bundle from any later point
            # of this run must name where the resumable state lives.
            health.checkpoint_path = str(ckpt_run.path)
            if obs.enabled:
                obs.instant(
                    "checkpoint-open",
                    track=TRACK_RUN,
                    args={
                        "path": str(ckpt_run.path),
                        "resume": resume,
                        "available": ckpt_run.available,
                    },
                )
        max_inflight: int | None = None
        if admission is not None:
            decision = admission.check(
                plan.segments, input_bytes=len(data)
            )
            health.admission = decision.to_dict()
            if obs.enabled:
                obs.instant(
                    "admission",
                    track=TRACK_RUN,
                    args=decision.to_dict(),
                )
            if decision.action == "refuse":
                error: Exception = AdmissionError(
                    f"admission guard refused the run: {decision.reason}"
                )
                obs.run_failed(error, health=health)
                if ckpt_run is not None:
                    ckpt_run.close()
                if owns_backend:
                    resolved.close()
                raise error
            max_inflight = decision.wave_size
        ctx = ExecutionContext(
            automaton=self.automaton,
            compiled=self.compiled,
            analysis=self.analysis,
            config=self.config,
            path_independent=self.path_independent,
            observer=obs,
            retry=retry if retry is not None else DEFAULT_RETRY_POLICY,
            injector=injector,
            health=health,
            checkpoint=ckpt_run,
            max_inflight=max_inflight,
        )
        try:
            outcomes = resolved.execute(ctx, data, plan.segments)
        except Exception as error:
            # The flight recorder turns this hook into a crash bundle
            # (ledger tail + health + metrics); the null observer
            # ignores it.  Fault and checkpoint bookkeeping runs first
            # so the bundle's health record names what was injected and
            # where the resumable segments live.
            if injector is not None:
                health.injected = list(injector.injected)
            if ckpt_run is not None:
                health.checkpoint_hits = ckpt_run.hits
                health.checkpoint_writes = ckpt_run.writes
            obs.run_failed(error, health=health)
            raise
        finally:
            if owns_backend:
                resolved.close()
            if injector is not None:
                health.injected = list(injector.injected)
            if ckpt_run is not None:
                health.checkpoint_hits = ckpt_run.hits
                health.checkpoint_writes = ckpt_run.writes
                ckpt_run.close()

        segment_results = [outcome.result for outcome in outcomes]
        composed_segments = [outcome.composed for outcome in outcomes]
        decode_costs = [outcome.decode_cycles for outcome in outcomes]

        # Availability chain with the common-case skip: T_cpu[j] is
        # charged only when segment j+1 actually consumed M[j] (it still
        # had live enumeration flows, or the FIV killed some).
        truth_times: list[int] = []
        tcpu_values: list[int] = []
        availability = 0
        for index, result in enumerate(segment_results):
            successor = (
                segment_results[index + 1]
                if index + 1 < len(segment_results)
                else None
            )
            needed = successor is not None and (
                _live_enumeration_flows(successor) > 0
                or successor.metrics.fiv_invalidations > 0
            )
            tcpu = decode_costs[index] if needed else 0
            availability = (
                max(availability, result.metrics.finish_cycles) + tcpu
            )
            tcpu_values.append(tcpu)
            truth_times.append(availability)
            if obs.enabled and tcpu:
                # Cycle-domain decode span, placed retroactively on the
                # availability chain (T_cpu of Section 3.4).
                obs.complete_span(
                    f"decode[{result.plan.segment.index}]",
                    track=TRACK_HOST,
                    cycle_start=availability - tcpu,
                    cycle_end=availability,
                    args={"flows": result.metrics.flows_at_end},
                )

        reports = frozenset().union(
            *(composed.true_reports for composed in composed_segments)
        ) if composed_segments else frozenset()

        raw_events = sum(r.metrics.raw_events for r in segment_results)
        enumeration_cycles = (
            (truth_times[-1] if truth_times else 0)
            + report_processing_cycles(raw_events)
        )
        golden_cycles = len(data) + report_processing_cycles(len(reports))

        svc_totals: dict[str, int] = {}
        for result in segment_results:
            for key, value in result.metrics.svc_stats.items():
                if key in ("peak_occupancy", "capacity", "occupied"):
                    svc_totals[key] = max(svc_totals.get(key, 0), value)
                else:
                    svc_totals[key] = svc_totals.get(key, 0) + value

        if obs.enabled:
            if golden_cycles < enumeration_cycles:
                obs.instant(
                    "golden-fallback",
                    track=TRACK_RUN,
                    cycle=golden_cycles,
                    args={
                        "golden_cycles": golden_cycles,
                        "enumeration_cycles": enumeration_cycles,
                    },
                )
                obs.metrics.counter("pap.golden_fallbacks").inc()
            for key, value in svc_totals.items():
                obs.metrics.gauge(f"svc.{key}").set(value)
            obs.metrics.counter("pap.runs").inc()
        obs.end_span(
            run_span,
            cycle=min(enumeration_cycles, golden_cycles),
            args={"reports": len(reports)},
        )

        result = PAPRunResult(
            reports=reports,
            plans=plan.segments,
            segment_results=tuple(segment_results),
            composed=tuple(composed_segments),
            partition_choice=plan.partition_choice,
            truth_times=tuple(truth_times),
            tcpu_cycles=tuple(tcpu_values),
            enumeration_cycles=enumeration_cycles,
            golden_cycles=golden_cycles,
            # The ASG flow occupies one SVC slot only when it exists —
            # automata with no path-independent states spawn none.
            svc_overflow=(
                plan.max_planned_flows
                + (1 if self.path_independent else 0)
                > self.config.max_flows
            ),
            input_bytes=len(data),
            extra={"svc": svc_totals, "health": health.to_dict()},
        )
        if ckpt_run is not None:
            result.extra["checkpoint"] = dict(ckpt_run.to_dict(), resumed=resume)
        # Phase attribution (repro.obs.phases): cycle phases derive
        # from the result itself; wall phases arrive via the observer
        # (including worker-shipped rows merged by the process backend).
        result.extra["phases"] = summarize_run_phases(
            result, wall=obs.phases
        )
        return result

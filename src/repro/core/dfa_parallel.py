"""Enumerative data-parallel DFA execution (paper Section 2.2).

The paper builds on Mytkowicz et al.'s data-parallel FSM scheme for
CPUs: cut the input into segments, run every segment from *every* DFA
state (enumeration), exploit the rapid convergence of enumerated state
vectors, then stitch segments by selecting each segment's true path
from its predecessor's ending state — the paper's Figure 2 walks a
3-state example.  This module implements that scheme over
:class:`repro.automata.dfa.Dfa` so the AP-specific contribution can be
compared against its CPU-side ancestor:

* the DFA scheme enumerates *states of a DFA* (bounded, but the DFA
  itself may be exponentially large — Section 2.1's blowup);
* the AP scheme enumerates *subsets via NFA linearity* with hardware
  flows — the whole point of the paper.

:func:`parallel_dfa_run` returns both the results and the work
accounting (state-steps executed vs. the sequential baseline), plus the
per-step vector history needed to reproduce Figure 2's convergence
behaviour in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.dfa import Dfa
from repro.core.partitioning import partition_input
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DfaSegmentTrace:
    """Enumeration of one segment: per-start-state end states."""

    start: int
    end: int
    end_state: tuple[int, ...]
    """``end_state[q]``: where the segment lands when entered in ``q``."""
    distinct_after: tuple[int, ...]
    """Distinct live states after each processed symbol (convergence
    curve — the paper's Figure 2 shows 3 -> 2 paths after two symbols)."""

    @property
    def converged_to(self) -> int:
        return self.distinct_after[-1] if self.distinct_after else 0


@dataclass(frozen=True)
class ParallelDfaResult:
    """Outcome and work accounting of one data-parallel DFA run."""

    final_state: int
    accept_offsets: tuple[int, ...]
    segments: tuple[DfaSegmentTrace, ...]
    enumerated_steps: int
    sequential_steps: int

    @property
    def work_amplification(self) -> float:
        """Enumerated state-steps over the sequential baseline's.

        Without convergence this is the DFA's state count; with it,
        typically a small constant — the effect Mytkowicz et al. (and
        Section 2.2) rely on."""
        if self.sequential_steps == 0:
            return 1.0
        return self.enumerated_steps / self.sequential_steps


def enumerate_segment(
    dfa: Dfa,
    data: bytes,
    start: int,
    end: int,
    *,
    converge: bool = True,
) -> tuple[DfaSegmentTrace, int]:
    """Run ``data[start:end]`` from every DFA state.

    With ``converge`` (the default), states that have mapped to the
    same current state are followed once — the vector of ``n`` start
    states collapses toward a handful of live computations.  Returns
    the trace and the number of state-steps executed.
    """
    num_states = dfa.num_states
    current = list(range(num_states))  # current[q] = state of path q
    steps = 0
    distinct_curve: list[int] = []
    for index in range(start, end):
        klass = dfa.symbol_class[data[index]]
        if converge:
            image: dict[int, int] = {}
            for path in range(num_states):
                state = current[path]
                if state not in image:
                    image[state] = dfa.transitions[state][klass]
                    steps += 1
                current[path] = image[state]
        else:
            for path in range(num_states):
                current[path] = dfa.transitions[current[path]][klass]
                steps += 1
        distinct_curve.append(len(set(current)))
    return (
        DfaSegmentTrace(
            start=start,
            end=end,
            end_state=tuple(current),
            distinct_after=tuple(distinct_curve),
        ),
        steps,
    )


def parallel_dfa_run(
    dfa: Dfa,
    data: bytes,
    num_segments: int,
    *,
    converge: bool = True,
) -> ParallelDfaResult:
    """The full Section 2.2 scheme: enumerate segments, stitch results.

    Segment 0 runs only from the initial state; later segments run from
    every state.  Acceptance offsets (the report-stream analogue) are
    recovered during stitching by replaying each segment's *true* path
    — bookkeeping a real implementation folds into the enumeration; the
    work accounting here charges only the enumeration, matching how the
    scheme's cost is usually reported.
    """
    if num_segments < 1:
        raise ConfigurationError("need at least one segment")
    segments = partition_input(data, num_segments)
    traces: list[DfaSegmentTrace] = []
    enumerated_steps = 0
    for segment in segments:
        if segment.index == 0:
            state = 0
            for index in range(segment.start, segment.end):
                state = dfa.step(state, data[index])
                enumerated_steps += 1
            traces.append(
                DfaSegmentTrace(
                    start=segment.start,
                    end=segment.end,
                    end_state=tuple(
                        state if q == 0 else 0 for q in range(dfa.num_states)
                    ),
                    distinct_after=(1,) * segment.length,
                )
            )
            continue
        trace, steps = enumerate_segment(
            dfa, data, segment.start, segment.end, converge=converge
        )
        traces.append(trace)
        enumerated_steps += steps

    # Stitch: pick each segment's true path from its predecessor's end.
    state = 0
    accept_offsets: list[int] = []
    for trace in traces:
        entry = state
        replay = entry
        for index in range(trace.start, trace.end):
            replay = dfa.step(replay, data[index])
            if dfa.accepting[replay]:
                accept_offsets.append(index)
        state = trace.end_state[entry] if trace.end > trace.start else entry
        assert replay == state

    return ParallelDfaResult(
        final_state=state,
        accept_offsets=tuple(accept_offsets),
        segments=tuple(traces),
        enumerated_steps=enumerated_steps,
        sequential_steps=len(data),
    )

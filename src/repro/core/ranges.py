"""Range-guided input partitioning: profiling and symbol choice.

Section 3.1: the *range* of a symbol bounds the possible start states of
the following segment, so inputs are cut at frequently occurring symbols
with small ranges.  The partition symbol is chosen by offline profiling:
among symbols frequent enough to cut the input into roughly equal
segments, pick the one with the smallest enumeration range (always-active
states do not count — the ASG flow covers them for free).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.automata.analysis import AutomatonAnalysis
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RangeProfile:
    """Per-symbol range sizes of one automaton (Figure 3's data)."""

    total_states: int
    sizes: tuple[int, ...]

    @property
    def minimum(self) -> int:
        return min(self.sizes)

    @property
    def maximum(self) -> int:
        return max(self.sizes)

    @property
    def average(self) -> float:
        return float(np.mean(self.sizes))


def range_profile(analysis: AutomatonAnalysis) -> RangeProfile:
    """Range sizes over all 256 symbols (Figure 3)."""
    return RangeProfile(
        total_states=len(analysis.automaton),
        sizes=tuple(int(n) for n in analysis.range_sizes()),
    )


def enumeration_range(
    analysis: AutomatonAnalysis,
    symbol: int,
    *,
    exclude: frozenset[int] = frozenset(),
    boundary_at_offset_zero: bool = False,
) -> frozenset[int]:
    """States enumerable as segment-boundary matches of ``symbol``.

    The raw range, minus states with no predecessors that are not
    all-input starts (a start-of-data state without predecessors cannot
    be matched at any offset past zero), minus ``exclude`` (the
    path-independent group when the ASG optimization is on).

    ``boundary_at_offset_zero`` covers the degenerate one-byte first
    segment: at input offset 0 every start-of-data state is enabled, so
    parentless start-of-data states are matchable there and must stay
    enumerable.
    """
    automaton = analysis.automaton
    candidates = analysis.symbol_range(symbol)
    all_input = frozenset(automaton.all_input_states())
    start_of_data = frozenset(automaton.start_of_data_states())
    result = set()
    for sid in candidates:
        if sid in exclude:
            continue
        if not automaton.predecessors(sid):
            persistently = sid in all_input
            at_zero = boundary_at_offset_zero and sid in start_of_data
            if not (persistently or at_zero):
                continue
        result.add(sid)
    return frozenset(result)


@dataclass(frozen=True)
class PartitionSymbolChoice:
    """Outcome of offline profiling."""

    symbol: int
    range_size: int
    occurrences: int


def choose_partition_symbol(
    analysis: AutomatonAnalysis,
    data: bytes,
    *,
    num_segments: int,
    exclude: frozenset[int] = frozenset(),
) -> PartitionSymbolChoice:
    """Pick the partition symbol for ``data``.

    A symbol is eligible when it occurs at least ``num_segments - 1``
    times (one cut per boundary).  Among eligible symbols the smallest
    enumeration range wins; occurrence count breaks ties (more frequent
    means boundaries can sit closer to the equal-size targets).
    """
    if num_segments < 1:
        raise ConfigurationError("need at least one segment")
    if not data:
        raise ConfigurationError("cannot profile an empty input")
    counts = Counter(data)
    needed = max(1, num_segments - 1)
    best: PartitionSymbolChoice | None = None
    for symbol, occurrences in counts.items():
        if occurrences < needed:
            continue
        size = len(enumeration_range(analysis, symbol, exclude=exclude))
        if (
            best is None
            or size < best.range_size
            or (size == best.range_size and occurrences > best.occurrences)
        ):
            best = PartitionSymbolChoice(
                symbol=symbol, range_size=size, occurrences=occurrences
            )
    if best is None:
        # No symbol occurs often enough; fall back to the most frequent.
        symbol, occurrences = counts.most_common(1)[0]
        best = PartitionSymbolChoice(
            symbol=symbol,
            range_size=len(enumeration_range(analysis, symbol, exclude=exclude)),
            occurrences=occurrences,
        )
    return best

"""Speculative segment execution (the paper's future-work direction).

Sections 6 and 7 point at *speculation* — guessing each segment's start
state instead of enumerating every candidate (Zhao & Shen's principled
speculation, MicroSpec) — as "a promising direction for reducing the
number of active flows".  This module implements that extension on the
same substrate:

* every segment runs **one** flow seeded with a *predicted* matched set
  (plus the always-true ASG flow);
* when the previous segment's true boundary set ``M`` becomes
  available, the prediction is validated; a mispredicted segment is
  re-executed from the correct seed, serializing on the truth chain —
  the classic speculation trade-off;
* results are exact: only validated (or re-executed) segment results
  are composed.

Two predictors are provided:

``cold``
    Predict that nothing beyond the path-independent states was active
    at the boundary (``M ∩ non-PI = ∅``).  Ideal for automata whose
    boundary symbols rarely keep pattern progress alive (the
    ExactMatch/Ranges class); hopeless for saturated automata.
``profile``
    Predict the most frequent boundary set observed while profiling a
    training prefix of the input offline — the hot-state idea of
    Luchaup et al.'s speculative matching.
``warmup``
    Re-execute a short history window (``warmup_symbols`` bytes before
    the segment) from a cold seed and predict its final state — most
    NFAs forget their history quickly, so a modest window usually
    reaches the true boundary set.  This is Luchaup et al.'s
    history-based speculation; the window trades prediction accuracy
    against the redundant warm-up work (charged to the segment).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Protocol

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.automata.execution import (
    CompiledAutomaton,
    FlowExecution,
    Report,
)
from repro.ap.placement import place_automaton, segments_available
from repro.core.config import DEFAULT_CONFIG, PAPConfig
from repro.core.partitioning import InputSegment, partition_input
from repro.core.ranges import choose_partition_symbol
from repro.host.decode import false_path_decode_cycles
from repro.host.reporting import report_processing_cycles


class Predictor(Protocol):
    """Maps a segment boundary to a predicted matched set."""

    def __call__(self, segment: InputSegment) -> frozenset[int]: ...


@dataclass(frozen=True)
class SegmentSpeculation:
    """Outcome of one segment under speculation."""

    segment: InputSegment
    predicted: frozenset[int]
    actual: frozenset[int]
    correct: bool
    first_run_cycles: int
    rerun_cycles: int


@dataclass(frozen=True)
class SpeculativeRunResult:
    """Outcome of a speculative parallel run."""

    reports: frozenset[Report]
    segments: tuple[SegmentSpeculation, ...]
    total_cycles: int
    golden_cycles: int

    @property
    def mispredictions(self) -> int:
        return sum(1 for s in self.segments if not s.correct)

    @property
    def prediction_accuracy(self) -> float:
        later = [s for s in self.segments if s.segment.index > 0]
        if not later:
            return 1.0
        return sum(1 for s in later if s.correct) / len(later)


class SpeculativeAutomataProcessor:
    """Parallel NFA execution by speculation instead of enumeration.

    The interface mirrors :class:`~repro.core.pap.ParallelAutomataProcessor`;
    ``predictor`` is ``"cold"``, ``"profile"``, or any callable mapping
    an :class:`InputSegment` to a predicted matched set of non-PI
    states.
    """

    def __init__(
        self,
        automaton: Automaton,
        *,
        config: PAPConfig = DEFAULT_CONFIG,
        half_cores: int | None = None,
        predictor: str | Predictor = "cold",
        warmup_symbols: int = 64,
    ) -> None:
        automaton.validate()
        self.automaton = automaton
        self.config = config
        self.analysis = AutomatonAnalysis(automaton)
        self.compiled = CompiledAutomaton(automaton)
        if half_cores is None:
            half_cores = place_automaton(
                automaton, analysis=self.analysis
            ).half_cores
        self.half_cores = half_cores
        self.path_independent = self.analysis.path_independent_states(0)
        self._predictor_spec = predictor
        if warmup_symbols < 1:
            raise ValueError("warmup window must be at least 1 symbol")
        self.warmup_symbols = warmup_symbols

    @property
    def num_segments(self) -> int:
        return max(
            1, segments_available(self.config.geometry, self.half_cores)
        )

    # -- predictors -------------------------------------------------------

    def _make_predictor(self, data: bytes) -> Predictor:
        if callable(self._predictor_spec):
            return self._predictor_spec
        if self._predictor_spec == "cold":
            return lambda segment: frozenset()
        if self._predictor_spec == "profile":
            return self._profile_predictor(data)
        if self._predictor_spec == "warmup":
            return self._warmup_predictor(data)
        raise ValueError(f"unknown predictor {self._predictor_spec!r}")

    def _warmup_predictor(self, data: bytes) -> Predictor:
        """History-based speculation: replay a window before the
        segment from a cold seed and take its ending matched set."""
        window = self.warmup_symbols

        def predict(segment: InputSegment) -> frozenset[int]:
            start = max(0, segment.start - window)
            flow = FlowExecution(
                self.compiled,
                persistent=self.path_independent,
                one_shot=frozenset(),
            )
            flow.run(data[start : segment.start], start)
            return frozenset(flow.state_vector() - self.path_independent)

        return predict

    def _profile_predictor(self, data: bytes) -> Predictor:
        """Offline profiling: run a training prefix, record the non-PI
        matched set after each occurrence of each symbol, and predict
        the modal set per boundary symbol."""
        prefix = data[: max(1, len(data) // max(4, self.num_segments))]
        flow = FlowExecution(self.compiled)
        observed: dict[int, Counter] = {}
        for index, symbol in enumerate(prefix):
            flow.step(symbol, index)
            non_pi = frozenset(
                flow.state_vector() - self.path_independent
            )
            observed.setdefault(symbol, Counter())[non_pi] += 1
        modal: dict[int, frozenset[int]] = {
            symbol: counts.most_common(1)[0][0]
            for symbol, counts in observed.items()
        }

        def predict(segment: InputSegment) -> frozenset[int]:
            if segment.boundary_symbol is None:
                return frozenset()
            return modal.get(segment.boundary_symbol, frozenset())

        return predict

    # -- execution ----------------------------------------------------------

    def run(self, data: bytes) -> SpeculativeRunResult:
        if not data:
            return SpeculativeRunResult(
                reports=frozenset(),
                segments=(),
                total_cycles=0,
                golden_cycles=0,
            )
        timing = self.config.timing
        choice = choose_partition_symbol(
            self.analysis,
            data,
            num_segments=self.num_segments,
            exclude=self.path_independent,
        )
        segments = partition_input(
            data, self.num_segments, symbol=choice.symbol
        )
        predictor = self._make_predictor(data)

        # Phase 1: run every segment on its predicted seed, in parallel.
        first_runs: list[FlowExecution] = []
        predictions: list[frozenset[int]] = []
        for segment in segments:
            if segment.index == 0:
                flow = FlowExecution(self.compiled)
                predictions.append(frozenset())
            else:
                predicted = frozenset(
                    predictor(segment) - self.path_independent
                )
                predictions.append(predicted)
                flow = FlowExecution(
                    self.compiled,
                    initial_current=predicted | self._asg_seed(segment),
                    persistent=self.path_independent,
                    one_shot=frozenset(),
                )
            flow.run(data[segment.start : segment.end], segment.start)
            first_runs.append(flow)

        # Phase 2: validate along the truth chain; re-execute on misses.
        outcomes: list[SegmentSpeculation] = []
        reports: set[Report] = set()
        previous_matched: frozenset[int] = frozenset()
        truth_time = 0
        raw_events = 0
        warmup_cost = (
            self.warmup_symbols if self._predictor_spec == "warmup" else 0
        )
        for segment, flow, predicted in zip(segments, first_runs, predictions):
            first_cycles = segment.length + (
                warmup_cost if segment.index > 0 else 0
            )
            raw_events += len(flow.reports)
            if segment.index == 0:
                actual = frozenset()
                correct = True
                final = flow
                rerun_cycles = 0
                truth_time = first_cycles
            else:
                actual = previous_matched - self.path_independent
                correct = predicted == actual
                if correct:
                    final = flow
                    rerun_cycles = 0
                    truth_time = max(truth_time, first_cycles)
                else:
                    final = FlowExecution(
                        self.compiled,
                        initial_current=actual | self._asg_seed(segment),
                        persistent=self.path_independent,
                        one_shot=frozenset(),
                    )
                    final.run(
                        data[segment.start : segment.end], segment.start
                    )
                    rerun_cycles = segment.length
                    raw_events += len(final.reports)
                    # The re-run starts only once truth arrived and
                    # serializes this segment on the chain.
                    truth_time = (
                        max(truth_time, first_cycles) + rerun_cycles
                    )
            truth_time += false_path_decode_cycles(1, timing=timing)
            reports.update(final.reports)
            previous_matched = final.state_vector()
            outcomes.append(
                SegmentSpeculation(
                    segment=segment,
                    predicted=predicted,
                    actual=actual,
                    correct=correct,
                    first_run_cycles=first_cycles,
                    rerun_cycles=rerun_cycles,
                )
            )

        total = truth_time + report_processing_cycles(raw_events)
        golden = len(data) + report_processing_cycles(len(reports))
        return SpeculativeRunResult(
            reports=frozenset(reports),
            segments=tuple(outcomes),
            total_cycles=min(total, golden),
            golden_cycles=golden,
        )

    def _asg_seed(self, segment: InputSegment) -> frozenset[int]:
        boundary = segment.boundary_symbol
        if boundary is None:
            return frozenset()
        return frozenset(
            sid
            for sid in self.path_independent
            if boundary in self.automaton.state(sid).label
        )

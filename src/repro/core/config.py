"""PAP configuration.

One dataclass gathers every knob of the parallel architecture: board
geometry, timing constants, TDM granularity, check cadences, and
per-optimization toggles (the toggles drive the Figure 9 waterfall and
the ablation benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ap.geometry import BoardGeometry
from repro.ap.timing import DEFAULT_TIMING, TimingModel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PAPConfig:
    """Configuration of one Parallel Automata Processor run.

    Attributes
    ----------
    geometry:
        The AP board (1-rank and 4-rank presets live in
        :mod:`repro.ap.geometry`).
    timing:
        Latency constants in symbol cycles.
    tdm_slice_symbols:
        ``k``: symbols each flow processes before a context switch
        (Section 3.2); also the input-buffer granularity.
    convergence_period_steps:
        Dynamic convergence checks run every this many TDM steps
        (Section 3.3.3 uses 10).
    early_check_symbols:
        During the first TDM step, deactivation checks run at this
        sub-slice granularity — the paper observes most flows die within
        ~20 symbols and adds "a few extra deactivation checks even
        before the first TDM step completes" (Section 3.3.4).
    max_flows:
        State-vector-cache capacity per device (512).  Plans exceeding
        it are recorded as overflowing (Section 5.1 calls the reduction
        optimizations "essential" precisely because of this limit).
    use_*:
        Optimization toggles: connected-component merging, common-parent
        merging, the ASG flow, dynamic convergence checks, deactivation
        checks, and the flow-invalidation vector.
    """

    geometry: BoardGeometry = field(default_factory=BoardGeometry)
    timing: TimingModel = DEFAULT_TIMING
    tdm_slice_symbols: int = 256
    convergence_period_steps: int = 10
    early_check_symbols: int = 16
    max_flows: int = 512
    use_connected_components: bool = True
    use_common_parent: bool = True
    use_asg: bool = True
    use_convergence: bool = True
    use_deactivation: bool = True
    use_fiv: bool = True

    def __post_init__(self) -> None:
        if self.tdm_slice_symbols < 1:
            raise ConfigurationError("TDM slice must be at least 1 symbol")
        if self.convergence_period_steps < 1:
            raise ConfigurationError("convergence period must be >= 1 step")
        if self.early_check_symbols < 1:
            raise ConfigurationError("early check granularity must be >= 1")
        if self.max_flows < 1:
            raise ConfigurationError("max_flows must be >= 1")

    def with_ranks(self, ranks: int) -> "PAPConfig":
        return replace(self, geometry=self.geometry.with_ranks(ranks))

    def without_optimizations(self) -> "PAPConfig":
        """Plain enumeration: every optimization off (ablation base)."""
        return replace(
            self,
            use_connected_components=False,
            use_common_parent=False,
            use_asg=False,
            use_convergence=False,
            use_deactivation=False,
            use_fiv=False,
        )


DEFAULT_CONFIG = PAPConfig()

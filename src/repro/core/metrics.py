"""Run-level results and aggregate metrics for PAP executions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.execution import Report
from repro.core.composition import ComposedSegment
from repro.core.ranges import PartitionSymbolChoice
from repro.core.scheduler import SegmentPlan, SegmentResult


@dataclass(frozen=True)
class PAPRunResult:
    """Everything produced by one Parallel Automata Processor run."""

    reports: frozenset[Report]
    plans: tuple[SegmentPlan, ...]
    segment_results: tuple[SegmentResult, ...]
    composed: tuple[ComposedSegment, ...]
    partition_choice: PartitionSymbolChoice | None
    truth_times: tuple[int, ...]
    """Cumulative wall-clock cycles at which each segment's true results
    became available (the ``T_M`` chain of Section 3.4)."""
    tcpu_cycles: tuple[int, ...]
    """Per-segment host decode cost (Figure 11's quantity)."""
    enumeration_cycles: int
    """End-to-end cycles of the enumerated execution path."""
    golden_cycles: int
    """Cycles the golden (sequential-fallback) execution would take."""
    svc_overflow: bool
    input_bytes: int = 0
    extra: dict = field(default_factory=dict)

    # -- headline numbers ----------------------------------------------------

    @property
    def total_cycles(self) -> int:
        """PAP completion time: the enumerated path, bounded by the
        golden execution (Section 5.1 — never worse than sequential)."""
        return min(self.enumeration_cycles, self.golden_cycles)

    @property
    def golden_fallback(self) -> bool:
        """True when the golden execution finished first."""
        return self.golden_cycles < self.enumeration_cycles

    @property
    def num_segments(self) -> int:
        return len(self.plans)

    @property
    def health(self) -> dict:
        """Recovery record for this run (``extra["health"]``): attempt
        counts, retries, timeouts, crashes, injected faults, and any
        serial downgrade.  Empty when the run predates health tracking."""
        return self.extra.get("health", {})

    @property
    def phases(self) -> dict:
        """Phase-attribution summary (``extra["phases"]``): per-phase
        cycle totals that provably sum to the run's totals, plus wall
        phases when a recording observer was attached — see
        :mod:`repro.obs.phases`.  Empty when the run predates phase
        accounting."""
        return self.extra.get("phases", {})

    # -- aggregates across segments ----------------------------------------

    @property
    def raw_events(self) -> int:
        return sum(r.metrics.raw_events for r in self.segment_results)

    @property
    def true_events(self) -> int:
        return sum(c.true_events for c in self.composed)

    @property
    def event_amplification(self) -> float:
        """Output-report increase due to false paths (Figure 12).

        Edge cases: with zero true events the ratio is undefined — zero
        raw events means *no* amplification (exactly ``1.0``, e.g. an
        empty input or a matchless trace), while raw events with no true
        ones report the raw count itself (every event was a false-path
        artifact).
        """
        if self.true_events == 0:
            if self.raw_events == 0:
                return 1.0
            return float(self.raw_events)
        return self.raw_events / self.true_events

    @property
    def transitions(self) -> int:
        return sum(r.metrics.transitions for r in self.segment_results)

    @property
    def average_active_flows(self) -> float:
        """Mean live flows per TDM step across enumerated segments
        (Figure 9's 'Avg. active flows')."""
        samples = [
            sample
            for result in self.segment_results
            if not result.plan.is_golden
            for sample in result.metrics.active_flow_samples
        ]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    @property
    def switching_overhead(self) -> float:
        """Context-switch cycles over total segment cycles (Figure 10)."""
        switch = sum(
            r.metrics.context_switch_cycles for r in self.segment_results
        )
        total = sum(r.metrics.finish_cycles for r in self.segment_results)
        if total == 0:
            return 0.0
        return switch / total

    @property
    def convergence_check_cycles(self) -> int:
        """Cycles charged for in-line convergence comparisons across all
        segments (zero under the default overlapped-checks timing)."""
        return sum(
            r.metrics.convergence_check_cycles for r in self.segment_results
        )

    @property
    def average_tcpu(self) -> float:
        """Mean per-segment false-path decode cost (Figure 11)."""
        if not self.tcpu_cycles:
            return 0.0
        return sum(self.tcpu_cycles) / len(self.tcpu_cycles)

    @property
    def deactivations(self) -> int:
        return sum(r.metrics.deactivations for r in self.segment_results)

    @property
    def convergence_merges(self) -> int:
        return sum(r.metrics.convergence_merges for r in self.segment_results)

    @property
    def fiv_invalidations(self) -> int:
        return sum(r.metrics.fiv_invalidations for r in self.segment_results)

    def transitions_per_symbol(self) -> float:
        """Mean state activations per input symbol (the Section 5.3
        dynamic-energy proxy; the paper reports 2.4x the baseline's)."""
        if self.input_bytes == 0:
            return 0.0
        return self.transitions / self.input_bytes

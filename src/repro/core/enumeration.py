"""Enumeration units: candidate boundary matches grouped by parent.

A segment's possible start condition is "some subset of the previous
boundary symbol's range was matched".  Enumerating subsets is
exponential; enumerating *states* is linear because homogeneous stepping
distributes over unions.  Common-parent grouping (Section 3.3.2)
shrinks this further: if parent ``p`` matched the symbol before the
boundary, then *every* child of ``p`` labeled with the boundary symbol
matched together — so those children form one indivisible enumeration
unit, true exactly when all its members are in the previous segment's
final matched set ``M``.

That membership rule is exact both ways:

* soundness — a unit entirely inside ``M`` only contributes executions
  from states that truly matched, so no false results are admitted even
  if the unit's own parent did not match;
* completeness — every state of ``M`` has at least one parent that
  matched one symbol earlier, and that parent's whole unit lies inside
  ``M``, so every true start state is covered by some true unit.

States appearing under several parents are members of several units
(the paper's "for correctness S46 has to be included in both flows").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.analysis import AutomatonAnalysis


@dataclass(frozen=True)
class EnumerationUnit:
    """One indivisible enumeration path group.

    ``parent`` is the common parent state, or ``None`` for a singleton
    unit created when parent merging is disabled.  All members share one
    connected component, recorded in ``component``.
    """

    unit_id: int
    parent: int | None
    members: frozenset[int]
    component: int

    def is_true(self, previous_matched: frozenset[int]) -> bool:
        """The composition truth rule: every member matched at the
        boundary."""
        return self.members <= previous_matched


def build_units(
    analysis: AutomatonAnalysis,
    range_states: frozenset[int],
    *,
    merge_by_parent: bool = True,
    force_singletons: frozenset[int] = frozenset(),
) -> list[EnumerationUnit]:
    """Group ``range_states`` into enumeration units.

    With parent merging each parent contributes one unit holding all its
    range children (duplicate member sets deduplicated); without it each
    range state is its own unit.  Unit ids are dense and deterministic
    (sorted by member tuple) so plans are reproducible.

    ``force_singletons`` lists states that must additionally carry a
    singleton unit even when grouped under parents: at a boundary at
    input offset 0, start-of-data states match *without* any parent
    having matched, so parent groups alone would not cover them.
    """
    component_of = analysis.component_index()
    groups: set[frozenset[int]] = set()
    if merge_by_parent:
        children: dict[int, set[int]] = {}
        for sid in range_states:
            parents = analysis.parents_of(sid)
            if not parents:
                # Only persistently-enabled (or offset-0) states are
                # matchable without parents; they form their own unit.
                groups.add(frozenset({sid}))
                continue
            for parent in parents:
                children.setdefault(parent, set()).add(sid)
        parent_of_group: dict[frozenset[int], int] = {}
        for parent, members in children.items():
            group = frozenset(members)
            groups.add(group)
            parent_of_group.setdefault(group, parent)
        for sid in force_singletons & range_states:
            groups.add(frozenset({sid}))
    else:
        groups = {frozenset({sid}) for sid in range_states}
        parent_of_group = {}

    units = []
    for unit_id, members in enumerate(sorted(groups, key=lambda g: sorted(g))):
        units.append(
            EnumerationUnit(
                unit_id=unit_id,
                parent=parent_of_group.get(members),
                members=members,
                component=component_of[next(iter(members))],
            )
        )
    return units


def unit_count_bound(
    analysis: AutomatonAnalysis, range_states: frozenset[int]
) -> int:
    """Cheap upper bound on ``len(build_units(analysis, range_states))``.

    Counts one prospective unit per distinct parent observed over the
    range plus one per parentless range state, *without* materializing
    child groups or deduplicating equal member sets — which is exactly
    why it can only overcount.  The static-analysis pass uses it to
    bound enumeration work before committing to a partition symbol.
    """
    parents: set[int] = set()
    parentless = 0
    for sid in range_states:
        state_parents = analysis.parents_of(sid)
        if state_parents:
            parents.update(state_parents)
        else:
            parentless += 1
    return len(parents) + parentless

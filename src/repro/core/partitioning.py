"""Cutting the input stream into segments.

Boundaries target equal-sized segments but snap to the nearest
occurrence of the chosen partition symbol so the *actual* last symbol of
each segment has a small range (Section 3.1).  When no occurrence falls
inside the snap window the cut happens at the target position anyway —
correctness never depends on the boundary symbol, only enumeration cost
does (the next segment simply enumerates the range of whatever symbol
ends up last).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class InputSegment:
    """One half-open slice ``data[start:end]`` of the input."""

    index: int
    start: int
    end: int
    boundary_symbol: int | None
    """The symbol at ``start - 1`` (None for the first segment): the
    symbol whose range bounds this segment's start states."""

    @property
    def length(self) -> int:
        return self.end - self.start


def partition_input(
    data: bytes,
    num_segments: int,
    *,
    symbol: int | None = None,
    snap_window: int | None = None,
) -> list[InputSegment]:
    """Split ``data`` into ``min(num_segments, len(data))`` segments.

    Cuts snap to the closest occurrence of ``symbol`` within
    ``snap_window`` bytes of each equal-size target (default window:
    half a segment) but never past the *next* segment's target, so the
    requested segment count is always delivered — callers size their
    flow plans for it.  An empty input yields no segments.
    """
    if num_segments < 1:
        raise ConfigurationError("need at least one segment")
    if not data:
        return []
    num_segments = min(num_segments, len(data))
    target_length = len(data) / num_segments
    if snap_window is None:
        snap_window = max(1, int(target_length // 2))

    boundaries: list[int] = [0]
    for index in range(1, num_segments):
        target = round(index * target_length)
        # A cut may snap within its window but never *across the next
        # target*: an overshooting cut would eat its successor's whole
        # region and silently cost the caller a segment.
        ceiling = round((index + 1) * target_length) - 1
        cut = _snap(
            data, target, symbol, snap_window, boundaries[-1], ceiling
        )
        if cut <= boundaries[-1]:
            # The window held no usable occurrence above the previous
            # boundary and the unsnapped target itself is spoken for
            # (the previous cut snapped up to this segment's region).
            # Take the earliest remaining position — a short segment
            # beats a lost one; correctness never depends on where the
            # boundary lands, only enumeration cost does.
            cut = max(target, boundaries[-1] + 1)
        boundaries.append(cut)
    boundaries.append(len(data))

    segments = []
    for index in range(len(boundaries) - 1):
        start, end = boundaries[index], boundaries[index + 1]
        segments.append(
            InputSegment(
                index=index,
                start=start,
                end=end,
                boundary_symbol=data[start - 1] if start else None,
            )
        )
    return segments


@dataclass(frozen=True)
class BoundaryProfile:
    """Static summary of one segmentation's boundary structure.

    The analysis pass consumes this instead of the raw segment list:
    ``snapped`` counts boundaries that landed on the partition symbol,
    ``off_symbol`` the ones where no occurrence fell inside the snap
    window (their successors enumerate a different — usually wider —
    range), and the length fields bound the per-segment work.

    Contract: ``snapped`` and ``off_symbol`` classify only the
    ``num_segments - 1`` *interior* boundaries (the first segment starts
    at offset 0 and has no boundary symbol), so for any non-empty
    partition ``snapped + off_symbol == num_segments - 1``.  The length
    statistics (``min_length`` / ``max_length`` / ``mean_length``) are
    computed over all ``num_segments`` segments.  In particular a
    one-segment profile has ``snapped == off_symbol == 0`` while its
    length fields still describe the single segment — a reader must not
    infer "no boundaries" from the counts alone.
    """

    num_segments: int
    snapped: int
    off_symbol: int
    min_length: int
    max_length: int
    mean_length: float
    boundary_symbols: tuple[int, ...]


def boundary_profile(
    segments: list[InputSegment], *, symbol: int | None = None
) -> BoundaryProfile:
    """Summarize how a partition's cuts landed (see
    :class:`BoundaryProfile`).  ``symbol`` is the partition symbol the
    cuts were snapped to; ``None`` counts every boundary as off-symbol.
    """
    if not segments:
        return BoundaryProfile(
            num_segments=0,
            snapped=0,
            off_symbol=0,
            min_length=0,
            max_length=0,
            mean_length=0.0,
            boundary_symbols=(),
        )
    boundary_symbols = tuple(
        segment.boundary_symbol
        for segment in segments
        if segment.boundary_symbol is not None
    )
    snapped = sum(1 for b in boundary_symbols if b == symbol)
    lengths = [segment.length for segment in segments]
    return BoundaryProfile(
        num_segments=len(segments),
        snapped=snapped,
        off_symbol=len(boundary_symbols) - snapped,
        min_length=min(lengths),
        max_length=max(lengths),
        mean_length=sum(lengths) / len(lengths),
        boundary_symbols=boundary_symbols,
    )


def _snap(
    data: bytes,
    target: int,
    symbol: int | None,
    window: int,
    floor: int,
    ceiling: int,
) -> int:
    """The cut position nearest ``target``: just after an occurrence of
    ``symbol`` when one lies within the window, else ``target``.  Cuts
    stay in ``(floor, ceiling]`` — ``ceiling`` is one short of the next
    segment's target, which is what guarantees every later segment
    still has room (see :func:`partition_input`)."""
    if symbol is None:
        return target
    # The scan is inclusive of ``target + window`` (an occurrence exactly
    # at the window edge is still in range) but stops at ``len(data) - 2``:
    # cutting after the input's last byte is no cut at all.
    lo = max(floor, target - window)
    hi = min(len(data) - 2, target + window, ceiling - 1)
    best = -1
    best_distance = 0
    for position in range(lo, hi + 1):
        if data[position] == symbol:
            distance = abs(position + 1 - target)
            if best < 0 or distance < best_distance:
                best = position + 1  # cut *after* the symbol
                best_distance = distance
    return best if best >= 0 else target

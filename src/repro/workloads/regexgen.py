"""Synthetic regex rulesets shaped like the Regex benchmark suite.

The Regex suite (Becchi et al.) parameterizes rulesets by the fraction
of rules containing unbounded ``.*`` repetitions (Dotstar03/06/09 =
3/6/9%), the fraction containing character classes (Ranges05/1 = 50% /
100%), exact literals (ExactMatch), and real ruleset shapes (Bro217,
TCP, PowerEN).  We regenerate those *shapes* with seeded randomness.

Connected components are controlled explicitly: patterns are drawn in
*groups* that share a common prefix, each group is compiled and
prefix-merged on its own, and groups are unioned — so the generated
automaton has exactly one component per group, matching how Table 1's
benchmarks keep tens of components after compression.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.automata.anml import Automaton
from repro.automata.builder import merge_all
from repro.regex.ruleset import compile_ruleset

LITERAL_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


@dataclass(frozen=True)
class RegexSuiteParams:
    """Shape parameters for one generated ruleset."""

    num_groups: int
    patterns_per_group: int
    min_length: int = 8
    max_length: int = 20
    dotstar_fraction: float = 0.0
    """Fraction of rules containing an inner unbounded ``.*``."""
    class_fraction: float = 0.0
    """Fraction of rules containing character classes."""
    class_width: int = 12
    """Symbols per character class."""
    prefix_length: int = 3
    """Shared prefix length within a group (drives prefix merging)."""


def _random_literal(rng: random.Random, length: int) -> str:
    return "".join(rng.choice(LITERAL_ALPHABET) for _ in range(length))


_CLASS_SPANS = ("abcdefghijklmnopqrstuvwxyz", "0123456789")


def _random_class(rng: random.Random, width: int) -> str:
    """A contiguous codepoint range inside one alphabet span."""
    span = rng.choice(_CLASS_SPANS)
    start = rng.randrange(max(1, len(span) - width + 1))
    stop = min(len(span) - 1, start + max(1, width - 1))
    if stop == start:
        return span[start]
    return f"[{span[start]}-{span[stop]}]"


def _make_pattern(rng: random.Random, params: RegexSuiteParams, prefix: str) -> str:
    length = rng.randint(params.min_length, params.max_length)
    body_length = max(1, length - len(prefix))
    pieces: list[str] = []
    use_classes = rng.random() < params.class_fraction
    for _ in range(body_length):
        if use_classes and rng.random() < 0.4:
            pieces.append(_random_class(rng, params.class_width))
        else:
            pieces.append(rng.choice(LITERAL_ALPHABET))
    if params.dotstar_fraction and rng.random() < params.dotstar_fraction:
        cut = rng.randint(1, max(1, len(pieces) - 1))
        pieces.insert(cut, ".*")
    return prefix + "".join(pieces)


def generate_ruleset(
    params: RegexSuiteParams, *, seed: int = 0, name: str = "regexgen"
) -> tuple[Automaton, list[str]]:
    """Generate, compile, and group-wise prefix-merge a ruleset.

    Returns the unioned automaton (one connected component per group)
    and the flat pattern list (for trace embedding and documentation).
    """
    rng = random.Random(seed)
    group_automata = []
    all_patterns: list[str] = []
    code_base = 0
    for group in range(params.num_groups):
        prefix = _random_literal(rng, params.prefix_length)
        patterns = [
            _make_pattern(rng, params, prefix)
            for _ in range(params.patterns_per_group)
        ]
        automaton, _ = compile_ruleset(
            patterns, name=f"{name}-g{group}", prefix_merge=True
        )
        group_automata.append(automaton)
        all_patterns.extend(patterns)
        code_base += len(patterns)
    merged = merge_all(group_automata, name=name)
    merged.validate()
    return merged, all_patterns


def literal_snippets(
    patterns: list[str], rng: random.Random, limit: int = 64
) -> list[bytes]:
    """Plain-literal patterns usable as guaranteed-match snippets."""
    snippets = [
        pattern.encode("latin-1")
        for pattern in patterns
        if all(ch in LITERAL_ALPHABET for ch in pattern)
    ]
    rng.shuffle(snippets)
    return snippets[:limit]

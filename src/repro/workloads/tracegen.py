"""Input trace generation.

The Regex-suite evaluation uses Becchi's synthetic trace generator with
``pm = 0.75``: at each position, with probability ``pm`` the next symbol
is chosen to match an outgoing transition of the current traversal
(pushing the automaton deeper, as in real traffic), otherwise a uniform
random byte is emitted.  :func:`pm_trace` implements that model as a
single-path random walk over the homogeneous automaton — the walk
descends through successor labels on matching steps and restarts from a
start state on random ones.

Domain benchmarks (DNA strings, protein sequences, transaction streams,
detector hit streams) use :func:`alphabet_trace` over their natural
alphabets.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.automata.anml import Automaton
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.automata.charclass import CharClass
    from repro.automata.execution import FlowExecution

DEFAULT_PM = 0.75


def pm_trace(
    automaton: Automaton,
    length: int,
    *,
    pm: float = DEFAULT_PM,
    seed: int = 0,
) -> bytes:
    """A Becchi-style trace: ``pm`` match probability, depth-wise
    traversal over the automaton's *active set*.

    ``pm = 0.75`` "has been shown to be representative of real-world
    traffic" (paper Section 4.1).  With probability ``pm`` the next
    symbol is chosen to match a successor of a random currently-active
    state — driving many patterns deeper simultaneously, as real
    traffic does — otherwise a uniform random byte is emitted.  The
    active set is maintained by actually executing the automaton over
    the trace being generated.
    """
    if not 0.0 <= pm <= 1.0:
        raise ConfigurationError(f"pm must be a probability, got {pm}")
    rng = random.Random(seed)
    if length == 0 or not automaton.start_states():
        return bytes(rng.randrange(256) for _ in range(length))

    from repro.automata.execution import CompiledAutomaton, FlowExecution

    compiled = CompiledAutomaton(automaton)
    execution = FlowExecution(compiled)
    out = bytearray()
    while len(out) < length:
        symbol: int | None = None
        if rng.random() < pm:
            source = _sample_state(execution, rng)
            if source is not None:
                successors = compiled.succ[source]
                if successors:
                    target = rng.choice(successors)
                    symbol = _sample_symbol(
                        automaton.state(target).label, rng
                    )
        if symbol is None:
            symbol = rng.randrange(256)
        execution.step(symbol, len(out))
        out.append(symbol)
    return bytes(out)


def _sample_state(
    execution: FlowExecution, rng: random.Random
) -> int | None:
    """A random active state, preferring the volatile frontier.

    Volatile states are the patterns currently mid-match — extending one
    of them is the depth-wise behaviour the Becchi generator models.
    Iteration order over int sets is deterministic in CPython, so the
    k-th-element fallback for large sets keeps traces reproducible.
    """
    pool = execution._volatile or execution._latched
    if not pool:
        return None
    if len(pool) <= 64:
        return rng.choice(sorted(pool))
    index = rng.randrange(len(pool))
    for position, sid in enumerate(pool):
        if position == index:
            return sid
    return None


def _sample_symbol(label: CharClass, rng: random.Random) -> int:
    """A random member of a character class, cheap for wide classes."""
    if label.is_full():
        return rng.randrange(256)
    intervals = label.intervals()
    low, high = rng.choice(intervals)
    return rng.randint(low, high)


def alphabet_trace(
    alphabet: bytes, length: int, *, seed: int = 0
) -> bytes:
    """Uniform random trace over ``alphabet`` (domain inputs: DNA bases,
    amino-acid letters, item codes...)."""
    if not alphabet:
        raise ConfigurationError("alphabet must be non-empty")
    rng = random.Random(seed)
    return bytes(rng.choice(alphabet) for _ in range(length))


def mixed_trace(
    alphabet: bytes,
    length: int,
    *,
    noise: float = 0.1,
    seed: int = 0,
) -> bytes:
    """An alphabet trace with a uniform-byte noise floor.

    The noise tail is what makes low-range partition symbols (bytes
    outside every pattern) occur often enough to cut the input at.
    """
    if not 0.0 <= noise <= 1.0:
        raise ConfigurationError(f"noise must be a probability, got {noise}")
    rng = random.Random(seed)
    return bytes(
        rng.randrange(256) if rng.random() < noise else rng.choice(alphabet)
        for _ in range(length)
    )


def embed_matches(
    trace: bytes,
    snippets: list[bytes],
    *,
    every: int,
    seed: int = 0,
) -> bytes:
    """Overwrite ``trace`` with pattern snippets roughly ``every`` bytes.

    Guarantees true matches occur throughout the input so report
    composition is exercised end to end, whatever the random walk did.
    """
    if every <= 0:
        raise ConfigurationError("embedding interval must be positive")
    if not snippets:
        return trace
    rng = random.Random(seed)
    out = bytearray(trace)
    position = rng.randrange(max(1, every))
    while position < len(out):
        snippet = rng.choice(snippets)
        out[position : position + len(snippet)] = snippet[
            : max(0, len(out) - position)
        ]
        position += max(len(snippet), every)
    return bytes(out)

"""Random Forest inference automata (the ANMLZoo *RandomForest*
benchmark).

Tracy et al. map decision-tree inference to automata: a feature vector
is serialized as a byte string (one byte per feature), and each
root-to-leaf path of each tree becomes a chain whose state ``i`` is a
threshold class — "feature ``i`` below/above the split value".  One
tree's paths share prefixes, so each tree compiles to one connected
component; the forest is their union (Table 1: 1,661 components of ~20
states each for the hand-written-digit model).
"""

from __future__ import annotations

import random

from repro.automata.anml import Automaton, StartKind
from repro.automata.builder import merge_all
from repro.automata.charclass import CharClass
from repro.automata.prefix_merge import merge_common_prefixes

FEATURE_LOW = 0x20
FEATURE_HIGH = 0x7E  # printable feature-value encoding
VECTOR_SEPARATOR = 0x0A  # newline between serialized feature vectors


def _bucket_class(center: int, width: int) -> CharClass:
    """A value-bucket interval around ``center``.

    The AP mapping discretizes each feature's split thresholds into
    small value buckets (Tracy et al.), so state labels are narrow
    intervals rather than half-range splits — which is what keeps
    RandomForest's symbol ranges near 5% of its state space (Table 1:
    range 1,616 of 33,220 states).
    """
    low = max(FEATURE_LOW, center - width // 2)
    high = min(FEATURE_HIGH, low + width - 1)
    return CharClass.range(low, high)


def tree_automaton(
    *,
    depth: int,
    num_leaves: int,
    rng: random.Random,
    report_code: int,
    name: str = "tree",
) -> Automaton:
    """One tree: ``num_leaves`` root-to-leaf threshold chains hanging
    off a vector-separator trigger, prefix merged so shared split
    prefixes collapse (one component).

    The trigger state matches the separator between serialized feature
    vectors and is an all-input start, so classification runs for every
    vector in the stream (and for the first one via start-of-data).
    """
    automaton = Automaton(name=name)
    trigger = automaton.add_state(
        CharClass.single(VECTOR_SEPARATOR),
        start=StartKind.ALL_INPUT,
        name="vector-start",
    )
    # Each tree discretizes every feature into a few buckets.  All
    # leaves share the root bucket (a tree has one root split), so each
    # tree prefix-merges into a single connected component.
    bucket_width = 5
    root_center = rng.randint(FEATURE_LOW + 3, FEATURE_HIGH - 3)
    bucket_centers = [
        [rng.randint(FEATURE_LOW + 3, FEATURE_HIGH - 3) for _ in range(3)]
        for _ in range(depth - 1)
    ]
    for _ in range(num_leaves):
        previous: int | None = None
        for level in range(depth):
            center = (
                root_center
                if level == 0
                else rng.choice(bucket_centers[level - 1])
            )
            is_last = level == depth - 1
            sid = automaton.add_state(
                _bucket_class(center, bucket_width),
                start=(
                    StartKind.START_OF_DATA if level == 0 else StartKind.NONE
                ),
                reporting=is_last,
                report_code=report_code if is_last else None,
            )
            if previous is None:
                automaton.add_edge(trigger, sid)
            else:
                automaton.add_edge(previous, sid)
            previous = sid
    merged = merge_common_prefixes(automaton)
    merged.name = name
    return merged


def randomforest_benchmark(
    *,
    num_trees: int,
    depth: int = 10,
    leaves_per_tree: int = 6,
    seed: int = 0,
) -> Automaton:
    """A forest of threshold-chain trees (anchored: classification runs
    on fixed-offset feature vectors, one vector per input record)."""
    rng = random.Random(seed)
    trees = [
        tree_automaton(
            depth=depth,
            num_leaves=leaves_per_tree,
            rng=rng,
            report_code=code,
            name=f"tree-{code}",
        )
        for code in range(num_trees)
    ]
    return merge_all(trees, name="RandomForest")


def feature_trace(
    length: int, *, vector_size: int = 28, seed: int = 0
) -> bytes:
    """Separator-delimited feature vectors over the printable range."""
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < length:
        out.extend(
            rng.randint(FEATURE_LOW, FEATURE_HIGH) for _ in range(vector_size)
        )
        out.append(VECTOR_SEPARATOR)
    return bytes(out[:length])

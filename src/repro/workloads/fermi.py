"""Particle-trajectory automata (the ANMLZoo *Fermi* benchmark).

Fermi predicts high-energy particle paths by matching detector hit
streams against known trajectories (Wang et al., NIM-A 2016).  Each
trajectory is a chain of *hit windows*: a coordinate tolerance per
detector layer, i.e. a wide numeric character class.  Because nearly
every state's class covers a large slice of the coordinate alphabet,
nearly every symbol reaches most states — Table 1 reports a 30,027
range over 40,783 states, the largest relative range in the suite, and
correspondingly the worst PAP speedup: enumeration flows rarely die.
"""

from __future__ import annotations

import random

from repro.automata.anml import Automaton, StartKind
from repro.automata.builder import merge_all
from repro.automata.charclass import CharClass

COORDINATE_LOW = 0x30
COORDINATE_HIGH = 0x6F  # 64-symbol coordinate alphabet


def trajectory_automaton(
    centers: list[int],
    tolerance: int,
    *,
    report_code: int = 0,
    name: str = "trajectory",
) -> Automaton:
    """One trajectory: a chain of coordinate windows.

    State ``i`` matches any coordinate within ``tolerance`` of
    ``centers[i]`` (clamped to the coordinate alphabet).  The chain is
    unanchored — a trajectory may begin at any hit.
    """
    automaton = Automaton(name=name)
    hub = automaton.add_state(
        CharClass.full(), start=StartKind.START_OF_DATA, name=".*"
    )
    automaton.add_edge(hub, hub)
    previous = hub
    for index, center in enumerate(centers):
        low = max(COORDINATE_LOW, center - tolerance)
        high = min(COORDINATE_HIGH, center + tolerance)
        is_last = index == len(centers) - 1
        sid = automaton.add_state(
            CharClass.range(low, high),
            start=StartKind.START_OF_DATA if index == 0 else StartKind.NONE,
            reporting=is_last,
            report_code=report_code if is_last else None,
        )
        automaton.add_edge(previous, sid)
        previous = sid
    return automaton


def fermi_benchmark(
    *,
    num_trajectories: int,
    layers: int = 16,
    tolerance: int = 12,
    seed: int = 0,
) -> tuple[Automaton, list[list[int]]]:
    """A union of trajectory machines with random layer centers."""
    rng = random.Random(seed)
    machines = []
    all_centers: list[list[int]] = []
    for code in range(num_trajectories):
        start = rng.randint(COORDINATE_LOW + 5, COORDINATE_HIGH - 5)
        centers = []
        position = start
        for _ in range(layers):
            position = min(
                COORDINATE_HIGH, max(COORDINATE_LOW, position + rng.randint(-3, 3))
            )
            centers.append(position)
        all_centers.append(centers)
        machines.append(
            trajectory_automaton(
                centers, tolerance, report_code=code, name=f"traj-{code}"
            )
        )
    return merge_all(machines, name="Fermi"), all_centers


def hit_trace(length: int, *, seed: int = 0) -> bytes:
    """A stream of detector hit coordinates (smooth random walk, the
    regime where wide windows keep many trajectories alive)."""
    rng = random.Random(seed)
    out = bytearray()
    position = rng.randint(COORDINATE_LOW, COORDINATE_HIGH)
    for _ in range(length):
        position = min(
            COORDINATE_HIGH,
            max(COORDINATE_LOW, position + rng.randint(-6, 6)),
        )
        out.append(position)
    return bytes(out)

"""Levenshtein automata (the ANMLZoo *Levenshtein* benchmark).

A Levenshtein automaton accepts every string within edit distance ``d``
(substitutions, insertions, deletions) of a reference string; the paper
runs length-24 references at distance 3 against encoded DNA sequences.

The construction goes through the classic-NFA substrate on purpose: the
textbook grid NFA over ``(consumed, edits)`` uses epsilon moves for
deletions, which :func:`repro.automata.conversion.nfa_to_anml`
eliminates and homogenizes — the same pipeline Micron's tooling applies.
Insertion and substitution transitions carry full-alphabet labels, so
Levenshtein's symbol ranges cover most of its state space (Table 1:
range 2090 of 2660 states) and its components are few and dense — the
paper's worst case for flow reduction.
"""

from __future__ import annotations

import random

from repro.automata.anml import Automaton
from repro.automata.builder import merge_all
from repro.automata.charclass import CharClass
from repro.automata.conversion import nfa_to_anml
from repro.automata.nfa import Nfa
from repro.errors import ConfigurationError
from repro.workloads.hamming import DNA_ALPHABET


def levenshtein_nfa(
    pattern: bytes, distance: int, *, unanchored: bool = True
) -> Nfa:
    """The classic grid NFA for ``pattern`` within ``distance`` edits.

    Substring semantics when ``unanchored``: the (0, 0) corner carries a
    full-alphabet self loop, so a match may start at any text offset —
    the semi-global alignment the DNA use case needs.
    """
    if not pattern:
        raise ConfigurationError("pattern must be non-empty")
    if distance < 0 or distance >= len(pattern):
        raise ConfigurationError(
            f"distance must be in [0, {len(pattern) - 1}], got {distance}"
        )
    length = len(pattern)
    nfa = Nfa(name=f"lev-{length}-{distance}")
    grid: dict[tuple[int, int], int] = {}
    for i in range(length + 1):
        for e in range(distance + 1):
            grid[(i, e)] = nfa.add_state(
                start=(i == 0 and e == 0), accept=i == length
            )
    if unanchored:
        nfa.add_transition(grid[(0, 0)], CharClass.full(), grid[(0, 0)])
    anything = CharClass.full()
    for i in range(length + 1):
        for e in range(distance + 1):
            here = grid[(i, e)]
            if i < length:
                nfa.add_transition(
                    here, CharClass.single(pattern[i]), grid[(i + 1, e)]
                )
            if e < distance:
                if i < length:
                    # substitution (consume one wrong symbol)
                    nfa.add_transition(here, anything, grid[(i + 1, e + 1)])
                    # deletion (skip a pattern symbol, no input consumed)
                    nfa.add_epsilon(here, grid[(i + 1, e + 1)])
                # insertion (consume a stray symbol, stay)
                nfa.add_transition(here, anything, grid[(i, e + 1)])
    return nfa


def levenshtein_automaton(
    pattern: bytes,
    distance: int,
    *,
    unanchored: bool = True,
    report_code: int | None = None,
    name: str | None = None,
) -> Automaton:
    """The homogeneous form of :func:`levenshtein_nfa`."""
    automaton = nfa_to_anml(
        levenshtein_nfa(pattern, distance, unanchored=unanchored),
        name=name or f"lev-{len(pattern)}-{distance}",
    )
    if report_code is not None:
        automaton = _recode(automaton, report_code)
    return automaton


def levenshtein_matches(
    reference: bytes, data: bytes, distance: int
) -> set[int]:
    """Reference oracle via semi-global edit-distance DP: end offsets
    ``t`` where some substring of ``data`` ending at ``t`` is within
    ``distance`` edits of ``reference``."""
    length = len(reference)
    previous = list(range(length + 1))  # D[i][0] = i
    offsets = set()
    for j, symbol in enumerate(data, start=1):
        current = [0] * (length + 1)  # D[0][j] = 0: match starts anywhere
        for i in range(1, length + 1):
            cost = 0 if reference[i - 1] == symbol else 1
            current[i] = min(
                previous[i - 1] + cost,  # match / substitute
                current[i - 1] + 1,  # delete from reference
                previous[i] + 1,  # insert stray text symbol
            )
        if current[length] <= distance:
            offsets.add(j - 1)
        previous = current
    return offsets


def levenshtein_benchmark(
    *,
    num_components: int,
    patterns_per_component: int = 1,
    pattern_length: int = 24,
    distance: int = 3,
    seed: int = 0,
    alphabet: bytes = DNA_ALPHABET,
) -> tuple[Automaton, list[bytes]]:
    """A union of Levenshtein machines.

    Patterns within one component share the unanchored corner state (we
    merge them by unioning their grids under a common hub), yielding the
    few dense components Table 1 reports (4 components for the paper's
    configuration).
    """
    rng = random.Random(seed)
    components = []
    references: list[bytes] = []
    code = 0
    for _ in range(num_components):
        machines = []
        for _ in range(patterns_per_component):
            reference = bytes(
                rng.choice(alphabet) for _ in range(pattern_length)
            )
            references.append(reference)
            machine = levenshtein_automaton(reference, distance)
            machines.append(_recode(machine, code))
            code += 1
        component = machines[0]
        for extra in machines[1:]:
            component = _bridge(component, extra)
        components.append(component)
    return merge_all(components, name="Levenshtein"), references


def _recode(automaton: Automaton, code: int) -> Automaton:
    """Copy with every reporting state's code set to ``code``."""
    out = Automaton(name=automaton.name)
    for ste in automaton.states():
        out.add_state(
            ste.label,
            start=ste.start,
            reporting=ste.reporting,
            report_code=code if ste.reporting else None,
            name=ste.name,
        )
    for src, dst in automaton.edges():
        out.add_edge(src, dst)
    return out


def _bridge(left: Automaton, right: Automaton) -> Automaton:
    """Union two machines and tie them into one connected component.

    The bridge edge targets the right machine's always-active corner hub
    (full label, self loop, start state) — a state that is matched on
    every cycle regardless of enabling, so the extra edge is
    semantically inert and only fuses the components, mirroring how
    dense ANMLZoo automata share entry fan-out.
    """
    merged = left.union(right)
    right_hub = _corner_hub(right)
    left_hub = _corner_hub(left)
    if right_hub is not None and left_hub is not None:
        merged.add_edge(left_hub, right_hub + len(left))
    return merged


def _corner_hub(automaton: Automaton) -> int | None:
    """The unanchored corner state: full label, self loop, start."""
    from repro.automata.anml import StartKind

    for ste in automaton.states():
        if (
            ste.label.is_full()
            and ste.start is not StartKind.NONE
            and automaton.has_self_loop(ste.sid)
        ):
            return ste.sid
    return None

"""Entity resolution automata (the ANMLZoo *EntityResolution*
benchmark).

Bo et al. resolve differently-written names ("J. L. Doe" vs "John Doe")
by matching token permutations with optional abbreviations: each entity
becomes a dense machine whose states are name-token characters and
whose edges connect every token ordering.  The resulting components are
few and *highly* connected (Table 1: 5 components for 5,689 states) —
the paper calls ER out, with Fermi, as the workload whose dense
components defeat the flow-reduction optimizations.
"""

from __future__ import annotations

import itertools
import random

from repro.automata.anml import Automaton, StartKind
from repro.automata.builder import merge_all
from repro.automata.charclass import CharClass

# Token characters are drawn from a deliberately small alphabet: real
# name corpora are dominated by a few frequent letters, and the ANMLZoo
# ER machine's symbol ranges cover ~27% of its states (Table 1: 1,515 of
# 5,689).  A compact alphabet reproduces that density, which is what
# defeats flow reduction for this benchmark.
NAME_ALPHABET = "aeinorst"


def entity_automaton(
    tokens: list[str],
    *,
    report_code: int = 0,
    name: str = "entity",
    max_orderings: int = 6,
) -> Automaton:
    """One entity: chains for every token ordering (up to a cap), plus
    single-initial abbreviations, sharing one unanchored hub."""
    automaton = Automaton(name=name)
    hub = automaton.add_state(
        CharClass.full(), start=StartKind.ALL_INPUT, name=".*"
    )
    automaton.add_edge(hub, hub)

    orderings = list(itertools.permutations(tokens))[:max_orderings]
    for ordering in orderings:
        variants = [list(ordering)]
        # Abbreviate every non-final token to its initial + '.'.
        variants.append(
            [
                token if i == len(ordering) - 1 else token[0] + "."
                for i, token in enumerate(ordering)
            ]
        )
        for variant in variants:
            text = " ".join(variant)
            previous = hub
            for index, char in enumerate(text):
                is_last = index == len(text) - 1
                sid = automaton.add_state(
                    CharClass.single(char),
                    start=(
                        StartKind.START_OF_DATA
                        if index == 0
                        else StartKind.NONE
                    ),
                    reporting=is_last,
                    report_code=report_code if is_last else None,
                )
                automaton.add_edge(previous, sid)
                previous = sid
    return automaton


def entityresolution_benchmark(
    *,
    num_entities: int,
    entities_per_component: int = 20,
    tokens_per_entity: int = 3,
    token_length: tuple[int, int] = (3, 7),
    seed: int = 0,
) -> tuple[Automaton, list[list[str]]]:
    """Entities packed into a few dense components.

    Entities within one component share the hub state, which is exactly
    how the ANMLZoo machine keeps its component count at 5 while being
    densely connected inside.
    """
    rng = random.Random(seed)
    components = []
    entities: list[list[str]] = []
    remaining = num_entities
    code = 0
    while remaining > 0:
        batch = min(entities_per_component, remaining)
        remaining -= batch
        component = Automaton(name=f"er-{len(components)}")
        hub = component.add_state(
            CharClass.full(), start=StartKind.ALL_INPUT, name=".*"
        )
        component.add_edge(hub, hub)
        for _ in range(batch):
            tokens = [
                "".join(
                    rng.choice(NAME_ALPHABET)
                    for _ in range(rng.randint(*token_length))
                )
                for _ in range(tokens_per_entity)
            ]
            entities.append(tokens)
            entity = entity_automaton(
                tokens, report_code=code, max_orderings=2
            )
            code += 1
            offset = len(component)
            for ste in entity.states():
                if ste.sid == 0:
                    continue  # skip the entity's own hub
                component.add_state(
                    ste.label,
                    start=ste.start,
                    reporting=ste.reporting,
                    report_code=ste.report_code,
                    name=ste.name,
                )
            for src, dst in entity.edges():
                src_mapped = hub if src == 0 else src + offset - 1
                dst_mapped = hub if dst == 0 else dst + offset - 1
                if src_mapped == hub and dst_mapped == hub:
                    continue
                component.add_edge(src_mapped, dst_mapped)
        components.append(component)
    return merge_all(components, name="EntityResolution"), entities


def name_trace(
    entities: list[list[str]],
    length: int,
    *,
    seed: int = 0,
    hit_fraction: float = 0.2,
) -> bytes:
    """A text stream of random words with known entities interleaved."""
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < length:
        if entities and rng.random() < hit_fraction:
            tokens = list(rng.choice(entities))
            rng.shuffle(tokens)
            out.extend(" ".join(tokens).encode())
        else:
            word = "".join(
                rng.choice(NAME_ALPHABET) for _ in range(rng.randint(2, 8))
            )
            out.extend(word.encode())
        out.append(ord(" "))
    return bytes(out[:length])

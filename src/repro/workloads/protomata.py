"""Protein motif automata (the ANMLZoo *Protomata* benchmark).

Protomata encapsulates thousands of known protein motifs (Roy & Aluru):
PROSITE-style patterns over the 20-letter amino-acid alphabet, e.g.
``A-[CD]-x(2)-E`` — a chain of single residues, residue classes, and
bounded wildcards (``x`` = any amino acid, *not* any byte, which keeps
symbol ranges small relative to the state count: Table 1 reports a
667-state range for 38,251 states).
"""

from __future__ import annotations

import random

from repro.automata.anml import Automaton
from repro.automata.builder import merge_all
from repro.regex.ruleset import compile_ruleset

AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"

# Amino-acid residue frequencies are strongly skewed in real motifs
# (leucine/alanine dominate); the skew is what keeps a rare residue's
# symbol range under 2% of the state space (Table 1: 667 of 38,251).
_RESIDUE_WEIGHTS = [20 - i for i in range(len(AMINO_ACIDS))]


def random_motif(
    rng: random.Random,
    *,
    min_length: int = 8,
    max_length: int = 24,
    class_probability: float = 0.12,
    wildcard_probability: float = 0.02,
) -> str:
    """One PROSITE-flavoured motif as a regex over amino letters."""
    length = rng.randint(min_length, max_length)
    pieces: list[str] = []
    for _ in range(length):
        roll = rng.random()
        if roll < wildcard_probability:
            pieces.append(f"[{AMINO_ACIDS}]")  # PROSITE 'x'
        elif roll < wildcard_probability + class_probability:
            size = rng.randint(2, 3)
            members = "".join(rng.sample(AMINO_ACIDS[:10], size))
            pieces.append(f"[{members}]")
        else:
            pieces.append(
                rng.choices(AMINO_ACIDS, weights=_RESIDUE_WEIGHTS)[0]
            )
    return "".join(pieces)


def protomata_benchmark(
    *,
    num_groups: int,
    motifs_per_group: int = 4,
    seed: int = 0,
) -> tuple[Automaton, list[str]]:
    """Motif groups sharing 2-residue prefixes, one component each."""
    rng = random.Random(seed)
    groups = []
    motifs: list[str] = []
    for group in range(num_groups):
        prefix = "".join(rng.sample(AMINO_ACIDS, 2))
        patterns = [
            prefix + random_motif(rng) for _ in range(motifs_per_group)
        ]
        automaton, _ = compile_ruleset(
            patterns, name=f"protomata-g{group}", prefix_merge=True
        )
        groups.append(automaton)
        motifs.extend(patterns)
    return merge_all(groups, name="Protomata"), motifs


def protein_trace(length: int, *, seed: int = 0, noise: float = 0.02) -> bytes:
    """A random protein sequence with a small non-residue noise floor
    (FASTA-style headers/separators).  Real protein streams are almost
    pure residue letters, so the partition symbol ends up being a rare
    residue rather than a free out-of-alphabet byte — matching the
    paper's non-trivial 667-state Protomata range."""
    rng = random.Random(seed)
    letters = AMINO_ACIDS.encode()
    return bytes(
        rng.randrange(256) if rng.random() < noise else rng.choice(letters)
        for _ in range(length)
    )

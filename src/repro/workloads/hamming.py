"""Hamming-distance automata (the ANMLZoo *Hamming* benchmark).

A Hamming automaton accepts every string within ``d`` substitutions of
a reference string (here: encoded DNA sequences, matching the paper's
description "counts the number of mismatches against input strings").

The homogeneous construction is a grid over positions and accumulated
mismatches: state ``(i, e, match)`` consumes ``pattern[i]`` exactly and
keeps the error count at ``e``; state ``(i, e, miss)`` consumes any
*other* symbol, having just raised the count to ``e``.  Both feed both
successors at position ``i + 1``: the match at the same level and the
miss one level up.  Miss states carry 255-symbol labels, which is why
Hamming's symbol ranges span most of the state space (Table 1: range
8151 of 11254 states) and why enumeration needs the flow-merging
optimizations so badly.
"""

from __future__ import annotations

import random

from repro.automata.anml import Automaton, StartKind
from repro.automata.builder import merge_all
from repro.automata.charclass import CharClass
from repro.errors import ConfigurationError

DNA_ALPHABET = b"ACGT"

_MATCH = 0
_MISS = 1


def hamming_automaton(
    pattern: bytes,
    distance: int,
    *,
    report_code: int = 0,
    name: str | None = None,
    unanchored: bool = True,
) -> Automaton:
    """One Hamming machine for ``pattern`` within ``distance``.

    States are keyed ``(position, errors_after_consuming, kind)``; a
    match keeps the error count, a miss state at level ``e`` represents
    the mismatch that *raised* the count to ``e``.
    """
    if not pattern:
        raise ConfigurationError("pattern must be non-empty")
    if distance < 0 or distance >= len(pattern):
        raise ConfigurationError(
            f"distance must be in [0, {len(pattern) - 1}], got {distance}"
        )
    automaton = Automaton(name=name or f"hamming-{len(pattern)}-{distance}")
    hub: int | None = None
    if unanchored:
        hub = automaton.add_state(
            CharClass.full(), start=StartKind.START_OF_DATA, name=".*"
        )
        automaton.add_edge(hub, hub)

    states: dict[tuple[int, int, int], int] = {}
    length = len(pattern)
    for i in range(length):
        is_last = i == length - 1
        # Position-0 states start at offset 0 either way; the hub (when
        # unanchored) re-enables them at every later offset.
        start_kind = (
            StartKind.START_OF_DATA if i == 0 else StartKind.NONE
        )
        exact = CharClass.single(pattern[i])
        for e in range(0, min(i, distance) + 1):
            states[(i, e, _MATCH)] = automaton.add_state(
                exact,
                start=start_kind,
                reporting=is_last,
                report_code=report_code if is_last else None,
                name=f"m{i}e{e}",
            )
        for e in range(1, min(i + 1, distance) + 1):
            states[(i, e, _MISS)] = automaton.add_state(
                exact.complement(),
                start=start_kind,
                reporting=is_last,
                report_code=report_code if is_last else None,
                name=f"x{i}e{e}",
            )

    for (i, e, _kind), sid in states.items():
        if i + 1 >= length:
            continue
        same_level = states.get((i + 1, e, _MATCH))
        if same_level is not None:
            automaton.add_edge(sid, same_level)
        raised = states.get((i + 1, e + 1, _MISS))
        if raised is not None:
            automaton.add_edge(sid, raised)

    if hub is not None:
        automaton.add_edge(hub, states[(0, 0, _MATCH)])
        if (0, 1, _MISS) in states:
            automaton.add_edge(hub, states[(0, 1, _MISS)])
    automaton.validate()
    return automaton


def hamming_matches(reference: bytes, data: bytes, distance: int) -> set[int]:
    """Reference oracle: end offsets where some window of ``data`` is
    within ``distance`` substitutions of ``reference``."""
    offsets = set()
    for start in range(len(data) - len(reference) + 1):
        window = data[start : start + len(reference)]
        mismatches = sum(1 for a, b in zip(window, reference) if a != b)
        if mismatches <= distance:
            offsets.add(start + len(reference) - 1)
    return offsets


def hamming_benchmark(
    *,
    num_machines: int,
    pattern_length: int = 24,
    distance: int = 3,
    seed: int = 0,
    alphabet: bytes = DNA_ALPHABET,
) -> tuple[Automaton, list[bytes]]:
    """A union of Hamming machines over random DNA references.

    Returns the automaton and the reference strings (for embedding
    guaranteed near-matches into traces).
    """
    rng = random.Random(seed)
    machines = []
    references = []
    for code in range(num_machines):
        reference = bytes(rng.choice(alphabet) for _ in range(pattern_length))
        references.append(reference)
        machines.append(
            hamming_automaton(
                reference,
                distance,
                report_code=code,
                name=f"hamming-{code}",
            )
        )
    return merge_all(machines, name="Hamming"), references

"""Loading external ANML benchmarks.

ANMLZoo distributes its benchmarks as ANML (XML) machine descriptions
plus representative input traces.  Given such files, this module wraps
them as :class:`~repro.workloads.suite.BenchmarkInstance` objects so
they drop into the same harness as the synthetic suite — the path a
user with access to the original (unredistributable) benchmark files
would take to reproduce the paper's exact workloads.
"""

from __future__ import annotations

from pathlib import Path

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml_xml import automaton_from_anml_xml
from repro.ap.placement import place_automaton
from repro.workloads.suite import BenchmarkInstance, PaperRow


def load_anml_benchmark(
    anml_path: str | Path,
    trace_path: str | Path | None = None,
    *,
    name: str | None = None,
    half_cores: int | None = None,
) -> BenchmarkInstance:
    """Wrap an ANML file (and optional trace file) as a benchmark.

    Without a trace file, the trace factory slices nothing — callers
    must supply their own inputs; with one, requests longer than the
    file wrap around (ANMLZoo traces are meant to be streamed
    repeatedly).
    """
    anml_path = Path(anml_path)
    automaton = automaton_from_anml_xml(anml_path.read_text())
    if name:
        automaton.name = name

    analysis = AutomatonAnalysis(automaton)
    if half_cores is None:
        half_cores = place_automaton(automaton, analysis=analysis).half_cores

    trace_data = (
        Path(trace_path).read_bytes() if trace_path is not None else b""
    )

    def trace(length: int, seed: int) -> bytes:
        if not trace_data:
            raise ValueError(
                f"benchmark {automaton.name!r} was loaded without a trace "
                "file; pass trace_path or generate inputs explicitly"
            )
        start = (seed * 8_191) % len(trace_data)
        repeated = trace_data[start:] + trace_data * (
            length // max(1, len(trace_data)) + 1
        )
        return repeated[:length]

    return BenchmarkInstance(
        name=automaton.name,
        automaton=automaton,
        trace=trace,
        paper=PaperRow(
            states=automaton.num_states,
            symbol_range=0,  # unknown until profiled
            components=len(analysis.connected_components()),
            half_cores=half_cores,
        ),
    )


def export_benchmark(
    benchmark: BenchmarkInstance,
    anml_path: str | Path,
    *,
    trace_path: str | Path | None = None,
    trace_bytes: int = 65_536,
    trace_seed: int = 1,
) -> None:
    """Write a benchmark's automaton (and optionally a trace) to disk
    in the interchange formats — the inverse of
    :func:`load_anml_benchmark`."""
    from repro.automata.anml_xml import automaton_to_anml_xml

    Path(anml_path).write_text(automaton_to_anml_xml(benchmark.automaton))
    if trace_path is not None:
        Path(trace_path).write_bytes(
            benchmark.trace(trace_bytes, trace_seed)
        )


def roundtrip_benchmark(
    benchmark: BenchmarkInstance, directory: str | Path
) -> BenchmarkInstance:
    """Export and re-import a benchmark (integration helper)."""
    directory = Path(directory)
    anml_path = directory / f"{benchmark.name}.anml"
    trace_path = directory / f"{benchmark.name}.input"
    export_benchmark(
        benchmark, anml_path, trace_path=trace_path, trace_bytes=16_384
    )
    return load_anml_benchmark(
        anml_path,
        trace_path,
        name=benchmark.name,
        half_cores=benchmark.half_cores,
    )

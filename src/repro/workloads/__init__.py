"""Evaluation workloads: the 19 Table 1 benchmarks and trace generators."""

from repro.workloads.entityres import entityresolution_benchmark
from repro.workloads.fermi import fermi_benchmark
from repro.workloads.hamming import hamming_automaton, hamming_benchmark
from repro.workloads.levenshtein import (
    levenshtein_automaton,
    levenshtein_benchmark,
)
from repro.workloads.protomata import protomata_benchmark
from repro.workloads.randomforest import randomforest_benchmark
from repro.workloads.regexgen import RegexSuiteParams, generate_ruleset
from repro.workloads.spm import spm_benchmark
from repro.workloads.suite import (
    ANMLZOO_SUITE,
    BENCHMARK_NAMES,
    REGEX_SUITE,
    BenchmarkInstance,
    PaperRow,
    build_benchmark,
    build_suite,
)
from repro.workloads.tracegen import (
    DEFAULT_PM,
    alphabet_trace,
    embed_matches,
    mixed_trace,
    pm_trace,
)

__all__ = [
    "ANMLZOO_SUITE",
    "BENCHMARK_NAMES",
    "BenchmarkInstance",
    "DEFAULT_PM",
    "PaperRow",
    "REGEX_SUITE",
    "RegexSuiteParams",
    "alphabet_trace",
    "build_benchmark",
    "build_suite",
    "embed_matches",
    "entityresolution_benchmark",
    "fermi_benchmark",
    "generate_ruleset",
    "hamming_automaton",
    "hamming_benchmark",
    "levenshtein_automaton",
    "levenshtein_benchmark",
    "mixed_trace",
    "pm_trace",
    "protomata_benchmark",
    "randomforest_benchmark",
    "spm_benchmark",
]

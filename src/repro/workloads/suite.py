"""The 19-benchmark evaluation suite (paper Table 1).

Every benchmark from the Regex and ANMLZoo suites used in the paper's
evaluation is regenerated here as a seeded synthetic workload targeting
the paper's structural statistics — state count, connected components,
symbol-range shape, and half-core footprint.  The registry records the
paper's Table 1 row next to each generator so the Table 1 benchmark can
print paper-vs-generated side by side.

Scaling: ``scale`` multiplies the number of connected components (rule
groups / machines / trees) while keeping the per-component structure
intact.  Flow counts after connected-component merging equal the
*maximum units per component*, which is scale-invariant — so PAP
speedup behaviour is preserved at reduced build cost.  Benchmarks with
intrinsically few components (Levenshtein, EntityResolution) scale
their per-component content instead and never drop below the paper's
component count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.automata.anml import Automaton
from repro.workloads import regexgen
from repro.workloads.entityres import entityresolution_benchmark, name_trace
from repro.workloads.fermi import fermi_benchmark, hit_trace
from repro.workloads.hamming import hamming_benchmark
from repro.workloads.levenshtein import levenshtein_benchmark
from repro.workloads.protomata import protein_trace, protomata_benchmark
from repro.workloads.randomforest import feature_trace, randomforest_benchmark
from repro.workloads.spm import spm_benchmark, transaction_trace
from repro.workloads.tracegen import (
    DEFAULT_PM,
    embed_matches,
    mixed_trace,
    pm_trace,
)

TraceFactory = Callable[[int, int], bytes]


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 1."""

    states: int
    symbol_range: int
    components: int
    half_cores: int

    @property
    def segments_one_rank(self) -> int:
        return 16 // self.half_cores

    @property
    def segments_four_ranks(self) -> int:
        return 64 // self.half_cores


@dataclass
class BenchmarkInstance:
    """A generated benchmark: automaton, trace factory, paper row."""

    name: str
    automaton: Automaton
    trace: TraceFactory
    paper: PaperRow

    @property
    def half_cores(self) -> int:
        return self.paper.half_cores


def _scaled(count: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, round(count * scale))


# -- Regex-suite generators ---------------------------------------------------


def _regex_benchmark(
    name: str,
    paper: PaperRow,
    params: regexgen.RegexSuiteParams,
    *,
    seed: int,
) -> BenchmarkInstance:
    automaton, patterns = regexgen.generate_ruleset(
        params, seed=seed, name=name
    )
    snippets = regexgen.literal_snippets(patterns, random.Random(seed))

    def trace(length: int, trace_seed: int) -> bytes:
        base = pm_trace(automaton, length, pm=DEFAULT_PM, seed=trace_seed)
        return embed_matches(
            base, snippets, every=max(64, length // 200), seed=trace_seed
        )

    return BenchmarkInstance(
        name=name, automaton=automaton, trace=trace, paper=paper
    )


def _dotstar(
    name: str,
    paper: PaperRow,
    fraction: float,
    groups: int,
    per_group: int,
    scale: float,
    seed: int,
    class_fraction: float = 0.0,
) -> BenchmarkInstance:
    params = regexgen.RegexSuiteParams(
        num_groups=_scaled(groups, scale),
        patterns_per_group=per_group,
        dotstar_fraction=fraction,
        class_fraction=class_fraction,
    )
    return _regex_benchmark(name, paper, params, seed=seed)


# -- builders, one per Table 1 row -------------------------------------------


def build_dotstar03(scale: float, seed: int) -> BenchmarkInstance:
    return _dotstar(
        "Dotstar03", PaperRow(11124, 163, 56, 1), 0.03, 56, 15, scale, seed
    )


def build_dotstar06(scale: float, seed: int) -> BenchmarkInstance:
    return _dotstar(
        "Dotstar06", PaperRow(11598, 315, 54, 1), 0.06, 54, 15, scale, seed
    )


def build_dotstar09(scale: float, seed: int) -> BenchmarkInstance:
    return _dotstar(
        "Dotstar09", PaperRow(11229, 314, 51, 1), 0.09, 51, 15, scale, seed
    )


def build_ranges05(scale: float, seed: int) -> BenchmarkInstance:
    params = regexgen.RegexSuiteParams(
        num_groups=_scaled(63, scale),
        patterns_per_group=13,
        class_fraction=0.5,
    )
    return _regex_benchmark(
        "Ranges05", PaperRow(11596, 1, 63, 1), params, seed=seed
    )


def build_ranges1(scale: float, seed: int) -> BenchmarkInstance:
    params = regexgen.RegexSuiteParams(
        num_groups=_scaled(57, scale),
        patterns_per_group=14,
        class_fraction=1.0,
    )
    return _regex_benchmark(
        "Ranges1", PaperRow(11418, 1, 57, 1), params, seed=seed
    )


def build_exactmatch(scale: float, seed: int) -> BenchmarkInstance:
    params = regexgen.RegexSuiteParams(
        num_groups=_scaled(53, scale), patterns_per_group=15
    )
    return _regex_benchmark(
        "ExactMatch", PaperRow(11270, 1, 53, 1), params, seed=seed
    )


def build_bro217(scale: float, seed: int) -> BenchmarkInstance:
    params = regexgen.RegexSuiteParams(
        num_groups=_scaled(59, scale),
        patterns_per_group=4,
        min_length=5,
        max_length=12,
        class_fraction=0.1,
    )
    return _regex_benchmark(
        "Bro217", PaperRow(1893, 6, 59, 1), params, seed=seed
    )


def build_tcp(scale: float, seed: int) -> BenchmarkInstance:
    params = regexgen.RegexSuiteParams(
        num_groups=_scaled(57, scale),
        patterns_per_group=17,
        class_fraction=0.35,
        dotstar_fraction=0.05,
    )
    return _regex_benchmark(
        "TCP", PaperRow(13834, 550, 57, 1), params, seed=seed
    )


def build_poweren1(scale: float, seed: int) -> BenchmarkInstance:
    params = regexgen.RegexSuiteParams(
        num_groups=_scaled(62, scale),
        patterns_per_group=14,
        class_fraction=0.4,
        dotstar_fraction=0.04,
    )
    return _regex_benchmark(
        "PowerEN1", PaperRow(12195, 466, 62, 1), params, seed=seed
    )


def build_dotstar(scale: float, seed: int) -> BenchmarkInstance:
    return _dotstar(
        "Dotstar",
        PaperRow(38951, 600, 90, 2),
        0.12,
        90,
        31,
        scale,
        seed,
        class_fraction=0.1,
    )


def build_snort(scale: float, seed: int) -> BenchmarkInstance:
    params = regexgen.RegexSuiteParams(
        num_groups=_scaled(90, scale),
        patterns_per_group=27,
        class_fraction=0.2,
        dotstar_fraction=0.03,
    )
    return _regex_benchmark(
        "Snort", PaperRow(34480, 792, 90, 3), params, seed=seed
    )


def build_clamav(scale: float, seed: int) -> BenchmarkInstance:
    """ClamAV: long virus signatures with bounded ``.{n}`` gaps, one
    component per signature (the paper skips prefix merging here)."""
    rng = random.Random(seed)
    num_signatures = _scaled(515, scale)
    patterns = []
    for _ in range(num_signatures):
        pieces = []
        for _ in range(rng.randint(3, 5)):
            pieces.append(regexgen._random_literal(rng, rng.randint(14, 22)))
        gap = ".{%d}" % rng.randint(4, 8)
        patterns.append(gap.join(pieces))
    from repro.regex.ruleset import compile_ruleset

    automaton, _ = compile_ruleset(
        patterns, name="ClamAV", prefix_merge=False
    )
    snippets = []  # gap patterns have no plain-literal snippet

    def trace(length: int, trace_seed: int) -> bytes:
        return pm_trace(automaton, length, pm=DEFAULT_PM, seed=trace_seed)

    del snippets
    return BenchmarkInstance(
        name="ClamAV",
        automaton=automaton,
        trace=trace,
        paper=PaperRow(49538, 5452, 515, 3),
    )


def build_fermi(scale: float, seed: int) -> BenchmarkInstance:
    automaton, _centers = fermi_benchmark(
        num_trajectories=_scaled(2399, scale), layers=16, seed=seed
    )
    return BenchmarkInstance(
        name="Fermi",
        automaton=automaton,
        trace=lambda length, trace_seed: hit_trace(length, seed=trace_seed),
        paper=PaperRow(40783, 30027, 2399, 2),
    )


def build_randomforest(scale: float, seed: int) -> BenchmarkInstance:
    automaton = randomforest_benchmark(
        num_trees=_scaled(1661, scale), depth=5, leaves_per_tree=5, seed=seed
    )
    return BenchmarkInstance(
        name="RandomForest",
        automaton=automaton,
        trace=lambda length, trace_seed: feature_trace(
            length, seed=trace_seed
        ),
        paper=PaperRow(33220, 1616, 1661, 2),
    )


def build_spm(scale: float, seed: int) -> BenchmarkInstance:
    automaton, items = spm_benchmark(
        num_patterns=_scaled(5025, scale), seed=seed
    )
    return BenchmarkInstance(
        name="SPM",
        automaton=automaton,
        trace=lambda length, trace_seed: transaction_trace(
            items, length, seed=trace_seed
        ),
        paper=PaperRow(100500, 20100, 5025, 2),
    )


def build_hamming(scale: float, seed: int) -> BenchmarkInstance:
    automaton, references = hamming_benchmark(
        num_machines=_scaled(49, scale),
        pattern_length=24,
        distance=3,
        seed=seed,
    )

    def trace(length: int, trace_seed: int) -> bytes:
        base = mixed_trace(b"ACGT", length, noise=0.05, seed=trace_seed)
        return embed_matches(
            base, references, every=max(96, length // 150), seed=trace_seed
        )

    return BenchmarkInstance(
        name="Hamming",
        automaton=automaton,
        trace=trace,
        paper=PaperRow(11254, 8151, 49, 2),
    )


def build_protomata(scale: float, seed: int) -> BenchmarkInstance:
    automaton, _motifs = protomata_benchmark(
        num_groups=_scaled(513, scale), motifs_per_group=4, seed=seed
    )
    return BenchmarkInstance(
        name="Protomata",
        automaton=automaton,
        trace=lambda length, trace_seed: protein_trace(
            length, seed=trace_seed
        ),
        paper=PaperRow(38251, 667, 513, 2),
    )


def build_levenshtein(scale: float, seed: int) -> BenchmarkInstance:
    automaton, references = levenshtein_benchmark(
        num_components=4,
        patterns_per_component=max(1, round(3 * max(scale, 0.34))),
        pattern_length=24,
        distance=3,
        seed=seed,
    )

    def trace(length: int, trace_seed: int) -> bytes:
        base = mixed_trace(b"ACGT", length, noise=0.05, seed=trace_seed)
        return embed_matches(
            base, references, every=max(96, length // 100), seed=trace_seed
        )

    return BenchmarkInstance(
        name="Levenshtein",
        automaton=automaton,
        trace=trace,
        paper=PaperRow(2660, 2090, 4, 3),
    )


def build_entityresolution(scale: float, seed: int) -> BenchmarkInstance:
    automaton, entities = entityresolution_benchmark(
        num_entities=_scaled(100, scale, minimum=10),
        entities_per_component=max(2, _scaled(20, scale)),
        seed=seed,
    )
    return BenchmarkInstance(
        name="EntityResolution",
        automaton=automaton,
        trace=lambda length, trace_seed: name_trace(
            entities, length, seed=trace_seed
        ),
        paper=PaperRow(5689, 1515, 5, 3),
    )


BUILDERS: dict[str, Callable[[float, int], BenchmarkInstance]] = {
    "Dotstar03": build_dotstar03,
    "Dotstar06": build_dotstar06,
    "Dotstar09": build_dotstar09,
    "Ranges05": build_ranges05,
    "Ranges1": build_ranges1,
    "ExactMatch": build_exactmatch,
    "Bro217": build_bro217,
    "TCP": build_tcp,
    "PowerEN1": build_poweren1,
    "Fermi": build_fermi,
    "RandomForest": build_randomforest,
    "Dotstar": build_dotstar,
    "SPM": build_spm,
    "Hamming": build_hamming,
    "Protomata": build_protomata,
    "Levenshtein": build_levenshtein,
    "EntityResolution": build_entityresolution,
    "Snort": build_snort,
    "ClamAV": build_clamav,
}

BENCHMARK_NAMES: tuple[str, ...] = tuple(BUILDERS)

REGEX_SUITE = (
    "Dotstar03",
    "Dotstar06",
    "Dotstar09",
    "Ranges05",
    "Ranges1",
    "ExactMatch",
    "Bro217",
    "TCP",
    "PowerEN1",
)

ANMLZOO_SUITE = tuple(n for n in BENCHMARK_NAMES if n not in REGEX_SUITE)


def build_benchmark(
    name: str, *, scale: float = 0.25, seed: int = 0
) -> BenchmarkInstance:
    """Build one named benchmark at the given scale."""
    if name not in BUILDERS:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(BUILDERS)}"
        )
    return BUILDERS[name](scale, seed)


def build_suite(
    names: tuple[str, ...] = BENCHMARK_NAMES,
    *,
    scale: float = 0.25,
    seed: int = 0,
) -> Iterator[BenchmarkInstance]:
    """Yield benchmark instances one at a time (they can be large)."""
    for name in names:
        yield build_benchmark(name, scale=scale, seed=seed)

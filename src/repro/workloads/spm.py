"""Sequential pattern mining automata (the ANMLZoo *SPM* benchmark).

Following Wang et al. (CF'16), SPM mines ordered item patterns from
*transaction* streams: a candidate ``<i1, i2, i3, i4>`` matches when a
single transaction contains those item codes in order with arbitrary
gaps.  Transactions are separated by a delimiter symbol, and the gap
wildcards exclude it — the regex ``i1[^|]*i2[^|]*i3[^|]*i4`` — so every
partial match dies at the next transaction boundary.

Every candidate is its own machine, giving the benchmark its signature
shape: a huge number of small connected components (Table 1: 5,025
components, 100,500 states) whose wide gap states dominate every
symbol's range (20,100 ≈ 4 gap states per component).
Connected-component merging collapses its ~20k enumeration paths to a
handful of flows (the paper reports 5), and the delimiter both resets
false flows within one transaction (mass deactivation) and offers a
natural low-range partition symbol.
"""

from __future__ import annotations

import random

from repro.automata.anml import Automaton
from repro.automata.builder import merge_all
from repro.regex.compiler import compile_pattern
from repro.regex.parser import parse

ITEM_ALPHABET = b"abcdefghijklmnopqrstuvwxyz"
TRANSACTION_DELIMITER = ord("|")


def spm_pattern(items: list[bytes]) -> str:
    """The within-transaction gap regex for one ordered item pattern."""
    gap = "[^|]*"
    return gap.join(item.decode("latin-1") for item in items)


def spm_benchmark(
    *,
    num_patterns: int,
    items_per_pattern: int = 4,
    item_length: int = 5,
    universe_size: int = 200,
    seed: int = 0,
    alphabet: bytes = ITEM_ALPHABET,
) -> tuple[Automaton, list[list[bytes]]]:
    """A union of gap-pattern machines over a *shared* item universe.

    Frequent-itemset candidates are combinations drawn from one item
    catalog (that is what makes them frequent); every item recurs
    constantly in the transaction stream, so enumeration flows of the
    same machine saturate to identical gap-state sets and converge —
    the dominant flow-reduction effect the paper reports for SPM.

    Returns the automaton and the item lists (for building transaction
    traces with guaranteed hits).
    """
    rng = random.Random(seed)
    universe = [
        bytes(rng.choice(alphabet) for _ in range(item_length))
        for _ in range(universe_size)
    ]
    machines = []
    all_items: list[list[bytes]] = []
    for code in range(num_patterns):
        items = rng.sample(universe, items_per_pattern)
        all_items.append(items)
        parsed = parse(spm_pattern(items))
        machine = compile_pattern(parsed, report_code=code)
        machine.name = f"spm-{code}"
        machines.append(machine)
    return merge_all(machines, name="SPM"), all_items


def transaction_trace(
    item_lists: list[list[bytes]],
    length: int,
    *,
    seed: int = 0,
    hit_fraction: float = 0.3,
    alphabet: bytes = ITEM_ALPHABET,
) -> bytes:
    """A transaction stream: random item codes, with ``hit_fraction`` of
    the stream spent emitting (gapped) occurrences of known patterns."""
    rng = random.Random(seed)
    catalog = sorted({item for items in item_lists for item in items})
    out = bytearray()
    while len(out) < length:
        if item_lists and rng.random() < hit_fraction:
            # A supporting transaction: the pattern's items in order,
            # padded with random catalog items in the gaps.
            for item in rng.choice(item_lists):
                out.extend(item)
                if rng.random() < 0.5 and catalog:
                    out.extend(rng.choice(catalog))
        elif catalog:
            # An ordinary transaction of random catalog items.
            for _ in range(rng.randrange(3, 9)):
                out.extend(rng.choice(catalog))
        else:
            out.extend(
                rng.choice(alphabet) for _ in range(rng.randrange(4, 16))
            )
        out.append(TRANSACTION_DELIMITER)
    return bytes(out[:length])

"""Command-line interface.

``python -m repro <command>`` drives the library without writing code:

* ``list`` — the 19 evaluation benchmarks and their Table 1 rows;
* ``run`` — one benchmark end to end (baseline vs. PAP) with metrics;
* ``match`` — compile patterns and scan a file, sequential vs. PAP;
* ``lint`` — static diagnostics (apcheck) for automata and deployments;
* ``table1`` / ``fig3`` — regenerate the characterization tables;
* ``speculate`` — the speculation extension on one benchmark.
"""

from __future__ import annotations

import argparse
import sys

from repro.automata.analysis import AutomatonAnalysis
from repro.core.config import PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.core.ranges import choose_partition_symbol, range_profile
from repro.core.speculation import SpeculativeAutomataProcessor
from repro.ap.geometry import BoardGeometry
from repro.ap.sequential import run_sequential
from repro.automata.anml import Automaton
from repro.automata.anml_xml import automaton_from_anml_xml
from repro.automata.serialization import loads as automaton_loads
from repro.errors import AutomatonError, ConfigurationError
from repro.lint import (
    FAMILIES,
    LintConfig,
    Severity,
    render_json,
    render_text,
    rules_for,
    run_lint,
)
from repro.regex.ruleset import compile_ruleset
from repro.sim.report import format_figure3, format_table1
from repro.sim.runner import run_benchmark
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark

PAPER_BYTES = {"1MB": 1_048_576, "10MB": 10_485_760}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale relative to the paper's state counts",
    )
    parser.add_argument("--seed", type=int, default=0)


def _cmd_list(_: argparse.Namespace) -> int:
    print(f"{'Benchmark':<18}{'Paper states':>14}{'CCs':>8}{'Half-cores':>12}")
    for name in BENCHMARK_NAMES:
        bench = build_benchmark(name, scale=0.01)
        row = bench.paper
        print(
            f"{name:<18}{row.states:>14}{row.components:>8}"
            f"{row.half_cores:>12}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    bench = build_benchmark(args.benchmark, scale=args.scale, seed=args.seed)
    run = run_benchmark(
        bench,
        ranks=args.ranks,
        trace_bytes=args.trace_bytes,
        modeled_bytes=PAPER_BYTES.get(args.model_input),
        trace_seed=args.seed + 1,
    )
    pap = run.pap
    print(f"benchmark        : {run.name} (scale {args.scale})")
    print(f"automaton        : {bench.automaton.num_states} states")
    print(f"trace            : {run.trace_bytes} bytes")
    print(f"segments         : {pap.num_segments} on {args.ranks} rank(s)")
    print(f"baseline cycles  : {run.baseline.total_cycles}")
    print(f"PAP cycles       : {pap.total_cycles}")
    print(f"speedup          : {run.speedup:.2f}x (ideal {run.ideal_speedup}x)")
    print(f"avg active flows : {pap.average_active_flows:.2f}")
    print(
        f"dynamics         : {pap.deactivations} deactivated, "
        f"{pap.convergence_merges} converged, "
        f"{pap.fiv_invalidations} FIV-killed"
    )
    print(
        f"reports          : {len(pap.reports)} "
        f"(amplification {pap.event_amplification:.2f}x, "
        f"verified {'OK' if run.reports_match else 'MISMATCH'})"
    )
    return 0 if run.reports_match else 1


def _cmd_match(args: argparse.Namespace) -> int:
    with open(args.file, "rb") as handle:
        data = handle.read()
    automaton, stats = compile_ruleset(args.pattern, name="cli")
    print(
        f"{stats.num_rules} patterns -> {automaton.num_states} states "
        f"({stats.compression:.0%} prefix compression)"
    )
    baseline = run_sequential(automaton, data)
    pap = ParallelAutomataProcessor(
        automaton, config=PAPConfig(geometry=BoardGeometry(ranks=args.ranks))
    )
    result = pap.run(data)
    status = "OK" if result.reports == baseline.reports else "MISMATCH"
    print(
        f"{len(baseline.reports)} matches over {len(data)} bytes "
        f"[verification {status}]"
    )
    print(
        f"speedup {baseline.total_cycles / max(1, result.total_cycles):.2f}x "
        f"on {result.num_segments} segments"
    )
    limit = args.show
    for report in sorted(result.reports)[:limit]:
        print(f"  rule {report.code} at offset {report.offset}")
    return 0 if status == "OK" else 1


def _lint_target(name: str, args: argparse.Namespace) -> Automaton:
    """Resolve one lint target: benchmark name, ANML-lite JSON, or
    ANML XML file."""
    if name in BENCHMARK_NAMES:
        bench = build_benchmark(name, scale=args.scale, seed=args.seed)
        return bench.automaton
    # Files load WITHOUT Automaton.validate: reporting AP001/AP002/AP003
    # on a broken automaton is the linter's job, not a crash.
    try:
        if name.endswith(".json"):
            with open(name, "r", encoding="utf-8") as handle:
                return automaton_loads(handle.read(), validate=False)
        if name.endswith((".anml", ".xml")):
            with open(name, "r", encoding="utf-8") as handle:
                return automaton_from_anml_xml(
                    handle.read(), validate=False
                )
    except (OSError, ValueError, AutomatonError) as error:
        raise SystemExit(f"cannot load {name!r}: {error}") from error
    raise SystemExit(
        f"unknown lint target {name!r}: not a benchmark name "
        f"(see `repro list`) or a .json/.anml/.xml automaton file"
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    targets = list(args.target)
    if args.suite:
        targets.extend(BENCHMARK_NAMES)
    if not targets:
        raise SystemExit("no lint targets: pass names/files or --suite")
    families = None
    if args.rules:
        families = tuple(
            family for family in args.rules.split(",") if family
        )
        try:
            rules_for(families)
        except ConfigurationError as error:
            raise SystemExit(str(error)) from error
    config = LintConfig(
        geometry=BoardGeometry(ranks=args.ranks),
        counters_used=args.counters,
        booleans_used=args.booleans,
    )
    min_severity = Severity.parse(args.severity)
    reports = []
    for name in targets:
        automaton = _lint_target(name, args)
        reports.append(
            run_lint(automaton, config=config, families=families)
        )
    if args.format == "json":
        print(render_json(reports, min_severity=min_severity))
    else:
        print(render_text(reports, min_severity=min_severity))
    if args.fail_on == "never":
        return 0
    threshold = Severity.parse(args.fail_on)
    failed = any(len(r.at_least(threshold)) for r in reports)
    return 1 if failed else 0


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = []
    for name in BENCHMARK_NAMES:
        bench = build_benchmark(name, scale=args.scale, seed=args.seed)
        analysis = AutomatonAnalysis(bench.automaton)
        components = len(analysis.connected_components())
        data = bench.trace(16_384, args.seed + 7)
        choice = choose_partition_symbol(
            analysis,
            data,
            num_segments=bench.paper.segments_one_rank,
            exclude=analysis.path_independent_states(),
        )
        raw = len(analysis.symbol_range(choice.symbol))
        rows.append((bench, bench.automaton.num_states, components, raw))
    print(format_table1(rows))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    rows = []
    for name in BENCHMARK_NAMES:
        bench = build_benchmark(name, scale=args.scale, seed=args.seed)
        analysis = AutomatonAnalysis(bench.automaton)
        rows.append(
            (name, bench.automaton.num_states, range_profile(analysis))
        )
    print(format_figure3(rows))
    return 0


def _cmd_speculate(args: argparse.Namespace) -> int:
    bench = build_benchmark(args.benchmark, scale=args.scale, seed=args.seed)
    data = bench.trace(args.trace_bytes, args.seed + 1)
    baseline = run_sequential(bench.automaton, data)
    config = PAPConfig(geometry=BoardGeometry(ranks=args.ranks))
    for predictor in ("cold", "profile"):
        spec = SpeculativeAutomataProcessor(
            bench.automaton,
            config=config,
            half_cores=bench.half_cores,
            predictor=predictor,
        )
        result = spec.run(data)
        ok = result.reports == baseline.reports
        print(
            f"{predictor:<8} speedup "
            f"{baseline.total_cycles / max(1, result.total_cycles):6.2f}x  "
            f"accuracy {result.prediction_accuracy * 100:5.1f}%  "
            f"mispredictions {result.mispredictions}  "
            f"[{'OK' if ok else 'MISMATCH'}]"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel Automata Processor reproduction "
            "(Subramaniyan & Das, ISCA 2017)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the evaluation benchmarks")

    run_parser = commands.add_parser("run", help="run one benchmark")
    run_parser.add_argument("benchmark", choices=BENCHMARK_NAMES)
    run_parser.add_argument("--ranks", type=int, default=1, choices=(1, 2, 4))
    run_parser.add_argument("--trace-bytes", type=int, default=65_536)
    run_parser.add_argument(
        "--model-input",
        choices=("1MB", "10MB"),
        default="1MB",
        help="paper input size the trace stands in for",
    )
    _add_common(run_parser)

    match_parser = commands.add_parser(
        "match", help="scan a file with regex patterns"
    )
    match_parser.add_argument("file")
    match_parser.add_argument(
        "--pattern", action="append", required=True, help="repeatable"
    )
    match_parser.add_argument("--ranks", type=int, default=1, choices=(1, 2, 4))
    match_parser.add_argument("--show", type=int, default=10)

    lint_parser = commands.add_parser(
        "lint",
        help="static diagnostics for automata (apcheck)",
        description=(
            "Run the apcheck static-analysis pass: structural "
            "well-formedness, parallelization risk, and AP capacity "
            "diagnostics with stable AP0xx/AP1xx/AP2xx codes."
        ),
    )
    lint_parser.add_argument(
        "target",
        nargs="*",
        help="benchmark names (see `repro list`) or .json/.anml/.xml files",
    )
    lint_parser.add_argument(
        "--suite",
        action="store_true",
        help="lint every bundled benchmark generator",
    )
    lint_parser.add_argument(
        "--rules",
        default="",
        help=f"comma-separated rule families ({', '.join(FAMILIES)})",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    lint_parser.add_argument(
        "--severity",
        choices=("info", "warning", "error"),
        default="info",
        help="minimum severity to display",
    )
    lint_parser.add_argument(
        "--fail-on",
        choices=("info", "warning", "error", "never"),
        default="error",
        help="exit 1 when diagnostics at/above this severity exist",
    )
    lint_parser.add_argument("--ranks", type=int, default=4, choices=(1, 2, 4))
    lint_parser.add_argument(
        "--counters",
        type=int,
        default=0,
        help="counter elements the deployment will program",
    )
    lint_parser.add_argument(
        "--booleans",
        type=int,
        default=0,
        help="boolean elements the deployment will program",
    )
    _add_common(lint_parser)

    table_parser = commands.add_parser(
        "table1", help="regenerate Table 1 characteristics"
    )
    _add_common(table_parser)

    fig3_parser = commands.add_parser(
        "fig3", help="regenerate Figure 3 range profiles"
    )
    _add_common(fig3_parser)

    spec_parser = commands.add_parser(
        "speculate", help="run the speculation extension"
    )
    spec_parser.add_argument("benchmark", choices=BENCHMARK_NAMES)
    spec_parser.add_argument("--ranks", type=int, default=1, choices=(1, 2, 4))
    spec_parser.add_argument("--trace-bytes", type=int, default=65_536)
    _add_common(spec_parser)

    return parser


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "match": _cmd_match,
    "lint": _cmd_lint,
    "table1": _cmd_table1,
    "fig3": _cmd_fig3,
    "speculate": _cmd_speculate,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface.

``python -m repro <command>`` drives the library without writing code:

* ``list`` — the 19 evaluation benchmarks and their Table 1 rows;
* ``run`` — one benchmark end to end (baseline vs. PAP) with metrics,
  optionally recording a Chrome trace (``--trace``), a text profile
  (``--profile``), and machine-readable output (``--format json``);
* ``trace`` — record a run's trace to Perfetto-loadable JSON, or
  validate/summarize an existing trace file;
* ``profile`` — phase-attribution profile of one run: where the cycles
  (and wall time) go, verified to sum exactly to the run's totals,
  with collapsed-stack and speedscope exports;
* ``bench`` — benchmark artifacts and regression gating: ``run``
  captures a ``BENCH_*.json``, ``compare`` diffs two artifacts under
  the dual-domain tolerance policy, ``report`` renders one;
* ``obs`` — run telemetry: validate/summarize flight-recorder ledgers
  and OpenMetrics exports, export a ledger's metrics, diff two runs;
* ``chaos`` — seeded fault-matrix sweep (crash / hang / transient /
  straggler / corrupt_checkpoint × segment coordinates) over one
  workload, printing a recovery table; exits 1 on any recovery that
  is not bit-exact against the fault-free run;
* ``match`` — compile patterns and scan a file, sequential vs. PAP;
* ``lint`` — static diagnostics (apcheck) for automata and deployments;
* ``analyze`` — predictive static analysis (repro.analyze): cost-model
  cycle/speedup predictions, capacity plans, and the prediction-vs-
  actual tolerance gate against a committed ``BENCH_*.json``;
* ``table1`` / ``fig3`` — regenerate the characterization tables;
* ``speculate`` — the speculation extension on one benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.automata.analysis import AutomatonAnalysis
from repro.core.config import DEFAULT_CONFIG, PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.core.ranges import choose_partition_symbol, range_profile
from repro.core.speculation import SpeculativeAutomataProcessor
from repro.ap.geometry import BoardGeometry
from repro.ap.sequential import run_sequential
from repro.automata.anml import Automaton
from repro.automata.anml_xml import automaton_from_anml_xml
from repro.automata.serialization import loads as automaton_loads
from repro.errors import (
    ArtifactError,
    AutomatonError,
    ConfigurationError,
    ReproError,
)
from repro.exec import (
    AdmissionPolicy,
    BACKEND_NAMES,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    HedgePolicy,
    ProcessPoolBackend,
    RetryPolicy,
    cycle_fingerprint,
    resolve_backend,
)
from repro.analyze.render import (
    render_analysis_sarif,
    render_analysis_text,
)
from repro.analyze.report import (
    DEFAULT_TOLERANCE,
    analyze_suite,
    compare_to_baseline,
    load_baseline,
)
from repro.lint import (
    FAMILIES,
    LintConfig,
    Severity,
    render_json,
    render_sarif,
    render_text,
    rules_for,
    run_lint,
    severity_gate,
)
from repro.obs import (
    FlightRecorder,
    Tracer,
    parse_openmetrics,
    read_ledger,
    render_openmetrics,
    render_phase_profile,
    summarize_ledger,
    to_folded,
    to_speedscope,
    validate_chrome_trace,
    validate_speedscope,
    verify_phase_totals,
)
from repro.perf import (
    CYCLE_DOMAIN,
    TolerancePolicy,
    WALL_DOMAIN,
    compare_reports,
    load_report,
    render_diff,
    render_report,
    run_bench_suite,
    select_benchmarks,
)
from repro.regex.ruleset import compile_ruleset
from repro.sim.report import format_figure3, format_table1
from repro.sim.runner import run_benchmark
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark

PAPER_BYTES = {"1MB": 1_048_576, "10MB": 10_485_760}


def _add_backend(parser: argparse.ArgumentParser) -> None:
    """Execution-backend flags shared by ``run`` and ``bench run``."""
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="serial",
        help=(
            "host execution backend (repro.exec); 'process' runs "
            "segments in worker processes, 'vector' steps flows with "
            "the NumPy bit-parallel executor — cycle metrics are "
            "identical across all backends"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend process (default: CPU count)",
    )
    parser.add_argument(
        "--no-fiv",
        action="store_true",
        help=(
            "disable the flow-invalidation vector; removes the "
            "cross-segment dependency so --backend process runs all "
            "segments concurrently (wall-clock parallel ablation)"
        ),
    )


def _add_resilience(parser: argparse.ArgumentParser) -> None:
    """Recovery/fault-injection flags shared by ``run`` and ``bench run``."""
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "re-executions allowed per segment after a retryable failure "
            "(worker crash, dispatch timeout, transient error); "
            "default 0 = fail fast"
        ),
    )
    parser.add_argument(
        "--segment-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-segment dispatch timeout on --backend process; a "
            "segment exceeding it counts as a retryable failure and the "
            "worker pool is recycled"
        ),
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault plan for resilience testing, e.g. "
            "'seed=7,rate=0.25,kinds=crash+transient' or "
            "'2:transient,3:crash*2' (see repro.exec.faults); recovered "
            "runs stay bit-exact in the cycle domain"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help=(
            "durable segment-result store: completed segments are "
            "written through to DIR (append-only JSONL, fsynced) keyed "
            "by the run fingerprint, so a crashed run can resume"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from --checkpoint: segments already proven under "
            "this run's fingerprint are replayed bit-exactly instead "
            "of re-executed"
        ),
    )
    parser.add_argument(
        "--hedge-after",
        type=float,
        default=None,
        metavar="MULT",
        help=(
            "straggler hedging on --backend process: a dispatch "
            "outstanding past MULT MAD multiples of this run's median "
            "segment wall is speculatively re-dispatched and the first "
            "result wins (bit-exact either way)"
        ),
    )
    parser.add_argument(
        "--breaker-after",
        type=int,
        default=None,
        metavar="N",
        help=(
            "circuit breaker on --backend process: N consecutive "
            "infrastructure failures (worker crashes / dispatch "
            "timeouts) open the breaker and the run fast-fails to "
            "in-process execution with a RunHealth reason code"
        ),
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "admission guard: refuse or chunk runs whose predicted "
            "peak host memory exceeds BYTES (see --admission-mode)"
        ),
    )
    parser.add_argument(
        "--admission-mode",
        choices=("chunk", "refuse"),
        default="chunk",
        help=(
            "over-budget response: 'chunk' bounds in-flight segment "
            "dispatches to fit the budget, 'refuse' fails the run "
            "before execution (default chunk)"
        ),
    )


def _resilience_from_args(
    args: argparse.Namespace,
) -> tuple[RetryPolicy | None, FaultPlan | None]:
    """Build the recovery policy and fault plan from CLI flags.

    Raises :class:`ConfigurationError` on invalid values — the caller
    maps that to a usage error (exit 2), same as bad backend flags.
    """
    retry = None
    if args.retries or args.segment_timeout is not None:
        retry = RetryPolicy(
            max_retries=args.retries,
            segment_timeout_s=args.segment_timeout,
        )
    faults = (
        FaultPlan.parse(args.inject_faults) if args.inject_faults else None
    )
    return retry, faults


def _durability_from_args(
    args: argparse.Namespace,
) -> tuple[HedgePolicy | None, CircuitBreaker | None, AdmissionPolicy | None]:
    """Build the durability policies from CLI flags.

    Returns ``(hedge, breaker, admission)``; the checkpoint path and
    resume flag pass through as ``args.checkpoint`` / ``args.resume``.
    Raises :class:`ConfigurationError` on invalid combinations.
    """
    if args.resume and not args.checkpoint:
        raise ConfigurationError("--resume needs --checkpoint DIR")
    hedge = (
        HedgePolicy(mad_multiplier=args.hedge_after)
        if args.hedge_after is not None
        else None
    )
    breaker = (
        CircuitBreaker(fail_threshold=args.breaker_after)
        if args.breaker_after is not None
        else None
    )
    admission = (
        AdmissionPolicy(
            memory_budget_bytes=args.memory_budget,
            mode=args.admission_mode,
        )
        if args.memory_budget is not None
        else None
    )
    return hedge, breaker, admission


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale relative to the paper's state counts",
    )
    parser.add_argument("--seed", type=int, default=0)


def _cmd_list(_: argparse.Namespace) -> int:
    print(f"{'Benchmark':<18}{'Paper states':>14}{'CCs':>8}{'Half-cores':>12}")
    for name in BENCHMARK_NAMES:
        bench = build_benchmark(name, scale=0.01)
        row = bench.paper
        print(
            f"{name:<18}{row.states:>14}{row.components:>8}"
            f"{row.half_cores:>12}"
        )
    return 0


def _run_summary(run, bench, args) -> dict:
    """The run summary as plain data — the single source both output
    formats (text and JSON) render from."""
    pap = run.pap
    return {
        "benchmark": run.name,
        "scale": args.scale,
        "seed": args.seed,
        "states": bench.automaton.num_states,
        "trace_bytes": run.trace_bytes,
        "ranks": run.ranks,
        "backend": getattr(args, "backend", "serial"),
        "use_fiv": not getattr(args, "no_fiv", False),
        "segments": pap.num_segments,
        "baseline_cycles": run.baseline.total_cycles,
        "pap_cycles": pap.total_cycles,
        "speedup": run.speedup,
        "ideal_speedup": run.ideal_speedup,
        "avg_active_flows": pap.average_active_flows,
        "switching_overhead": pap.switching_overhead,
        "deactivations": pap.deactivations,
        "convergence_merges": pap.convergence_merges,
        "fiv_invalidations": pap.fiv_invalidations,
        "reports": len(pap.reports),
        "event_amplification": pap.event_amplification,
        "golden_fallback": pap.golden_fallback,
        "reports_match": run.reports_match,
        "svc": pap.extra.get("svc", {}),
        "health": pap.health,
        "checkpoint": pap.extra.get("checkpoint"),
    }


def _print_run_text(summary: dict) -> None:
    print(
        f"benchmark        : {summary['benchmark']} "
        f"(scale {summary['scale']})"
    )
    print(f"automaton        : {summary['states']} states")
    print(f"trace            : {summary['trace_bytes']} bytes")
    print(
        f"segments         : {summary['segments']} "
        f"on {summary['ranks']} rank(s)"
    )
    if summary["backend"] != "serial" or not summary["use_fiv"]:
        fiv = "on" if summary["use_fiv"] else "off"
        print(
            f"backend          : {summary['backend']} (FIV {fiv})"
        )
    print(f"baseline cycles  : {summary['baseline_cycles']}")
    print(f"PAP cycles       : {summary['pap_cycles']}")
    print(
        f"speedup          : {summary['speedup']:.2f}x "
        f"(ideal {summary['ideal_speedup']}x)"
    )
    print(f"avg active flows : {summary['avg_active_flows']:.2f}")
    print(
        f"dynamics         : {summary['deactivations']} deactivated, "
        f"{summary['convergence_merges']} converged, "
        f"{summary['fiv_invalidations']} FIV-killed"
    )
    svc = summary["svc"]
    if svc:
        print(
            f"state-vector $   : peak {svc.get('peak_occupancy', 0)}"
            f"/{svc.get('capacity', 0)} occupied, "
            f"{svc.get('saves', 0)} saves, {svc.get('hits', 0)} hits, "
            f"{svc.get('misses', 0)} misses"
        )
    health = summary.get("health", {})
    if any(
        health.get(key)
        for key in (
            "retries", "timeouts", "crashes", "faults_injected",
            "downgraded", "hedges", "worker_steps",
        )
    ):
        line = (
            f"resilience       : {health.get('retries', 0)} retries, "
            f"{health.get('timeouts', 0)} timeouts, "
            f"{health.get('crashes', 0)} crashes, "
            f"{health.get('faults_injected', 0)} faults injected"
        )
        if health.get("hedges"):
            line += (
                f", {health['hedges']} hedges "
                f"({len(health.get('hedge_wins', []))} won)"
            )
        if health.get("worker_steps"):
            line += f", {len(health['worker_steps'])} pool step-downs"
        if health.get("downgraded"):
            line += (
                " [degraded to serial at segment "
                f"{health.get('downgraded_at_segment')}]"
            )
        print(line)
    if health.get("breaker_state"):
        line = f"breaker          : {health['breaker_state']}"
        if health.get("breaker_reason"):
            line += f" ({health['breaker_reason']})"
        print(line)
    ckpt = summary.get("checkpoint")
    if ckpt:
        print(
            f"checkpoint       : {ckpt['path']} "
            f"({ckpt['hits']} hits, {ckpt['writes']} writes"
            f"{', resumed' if ckpt.get('resumed') else ''})"
        )
    admission = health.get("admission")
    if admission:
        print(
            f"admission        : {admission['action']} "
            f"(predicted peak {admission['predicted_peak_bytes']} B, "
            f"budget {admission['budget_bytes']} B"
            + (
                f", wave {admission['wave_size']} segments"
                if admission.get("wave_size")
                else ""
            )
            + ")"
        )
    print(
        f"reports          : {summary['reports']} "
        f"(amplification {summary['event_amplification']:.2f}x, "
        f"verified {'OK' if summary['reports_match'] else 'MISMATCH'})"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    bench = build_benchmark(args.benchmark, scale=args.scale, seed=args.seed)
    # The flight recorder IS a tracer, so --trace/--profile work off it;
    # --metrics-export only needs a live metrics registry.
    tracer: Tracer | None
    if args.ledger:
        tracer = FlightRecorder(path=args.ledger)
    elif args.trace or args.profile or args.metrics_export or (
        args.drift_baseline
    ):
        tracer = Tracer()
    else:
        tracer = None
    config = (
        replace(DEFAULT_CONFIG, use_fiv=False)
        if args.no_fiv
        else DEFAULT_CONFIG
    )
    try:
        retry, faults = _resilience_from_args(args)
        hedge, breaker, admission = _durability_from_args(args)
        backend = resolve_backend(
            args.backend, workers=args.workers, hedge=hedge, breaker=breaker
        )
    except ConfigurationError as error:
        print(f"repro run: {error}", file=sys.stderr)
        return 2
    drift = None
    try:
        run = run_benchmark(
            bench,
            ranks=args.ranks,
            trace_bytes=args.trace_bytes,
            modeled_bytes=PAPER_BYTES.get(args.model_input),
            trace_seed=args.seed + 1,
            config=config,
            observer=tracer,
            backend=backend,
            retry=retry,
            faults=faults,
            checkpoint=args.checkpoint,
            resume=args.resume,
            admission=admission,
        )
        if args.drift_baseline:
            # Checked before the ledger seals so the drift events and
            # counters land inside it.
            from repro.obs.drift import DriftMonitor

            assert tracer is not None
            monitor = DriftMonitor.from_analysis_artifact(
                args.drift_baseline,
                args.benchmark,
                ranks=args.ranks,
                tolerance=args.drift_tolerance,
                observer=tracer,
            )
            drift = monitor.check_run(run.pap)
    finally:
        backend.close()
        # Seal the ledger even when the run raised: the failure record
        # and crash bundle were written by the run_failed hook, and the
        # close record makes the ledger valid for `repro obs summary`.
        if isinstance(tracer, FlightRecorder):
            tracer.close()
    summary = _run_summary(run, bench, args)
    if drift is not None:
        summary["drift"] = [diag.to_dict() for diag in drift]
    if args.format == "json":
        print(json.dumps(summary, indent=2))
    else:
        _print_run_text(summary)
        if drift is not None:
            if drift:
                for diag in drift:
                    print(f"drift            : {diag.code} {diag.message}")
            else:
                print(
                    "drift            : none (within "
                    f"{args.drift_tolerance:.0%} of prediction)"
                )
    out_stream = sys.stderr if args.format == "json" else sys.stdout
    if tracer is not None and args.trace:
        tracer.write_chrome(args.trace, domain=args.trace_domain)
        print(
            f"trace written    : {args.trace} "
            f"({args.trace_domain} domain, open in ui.perfetto.dev)",
            file=out_stream,
        )
    if tracer is not None and args.metrics_export:
        with open(args.metrics_export, "w", encoding="utf-8") as handle:
            handle.write(render_openmetrics(tracer.metrics.snapshot()))
        print(
            f"metrics written  : {args.metrics_export} (OpenMetrics)",
            file=out_stream,
        )
    if isinstance(tracer, FlightRecorder) and args.ledger:
        print(
            f"ledger written   : {args.ledger} "
            f"(run {tracer.run_id}, {tracer.num_records} records)",
            file=out_stream,
        )
    if tracer is not None and args.profile:
        # With JSON output the profile goes to stderr so stdout stays
        # machine-readable.
        print(tracer.text_profile(), file=out_stream)
    return 0 if run.reports_match else 1


#: Fault kinds `repro chaos` can sweep; every one must recover to a
#: bit-exact cycle fingerprint for the sweep to pass.
CHAOS_KINDS = ("crash", "hang", "transient", "straggler",
               "corrupt_checkpoint")


def _chaos_coordinates(num_segments: int, count: int) -> list[int]:
    """``count`` segment indices spread over the run, first and last
    included — faults at the golden segment and the tail boundary are
    the historically interesting coordinates."""
    if count >= num_segments:
        return list(range(num_segments))
    if count == 1:
        return [0]
    picks = {
        round(i * (num_segments - 1) / (count - 1)) for i in range(count)
    }
    return sorted(picks)


def _chaos_trial(pap, data, reference, kind, segment, args) -> dict:
    """One fault-matrix cell: inject ``kind`` at ``segment``, recover,
    and compare the cycle fingerprint against the fault-free run."""
    import tempfile
    import time as _time

    row = {"kind": kind, "segment": segment, "recovered": False,
           "wall_ms": 0.0, "detail": ""}
    start = _time.perf_counter()
    try:
        if kind == "corrupt_checkpoint":
            # Write-side corruption: first pass tears the segment's
            # checkpoint record, the resume pass must drop it and
            # re-execute (never crash, never trust the torn record).
            faults = FaultPlan(
                specs=(FaultSpec(segment=segment, kind=kind),)
            )
            with tempfile.TemporaryDirectory(prefix="chaos-ckpt-") as tmp:
                pap.run(data, checkpoint=tmp, faults=faults)
                result = pap.run(data, checkpoint=tmp, resume=True)
                ckpt = result.extra["checkpoint"]
                row["detail"] = (
                    f"{ckpt['dropped_records']} torn record(s) dropped, "
                    f"{ckpt['hits']} hits on resume"
                )
        else:
            faults = FaultPlan(
                specs=(FaultSpec(segment=segment, kind=kind),),
                hang_s=args.hang,
                straggler_s=args.straggler,
            )
            retry = RetryPolicy(
                max_retries=args.retries,
                segment_timeout_s=args.segment_timeout,
                backoff_base_s=0.0,
            )
            backend = ProcessPoolBackend(
                workers=args.workers or 2, hedge=HedgePolicy()
            )
            try:
                # Warm the pool (spawn + compile) fault-free first so
                # the dispatch timeout measures recovery, not worker
                # cold start.
                pap.run(data, backend=backend)
                start = _time.perf_counter()
                result = pap.run(
                    data, backend=backend, retry=retry, faults=faults
                )
                # Measured before close(): close joins workers, and a
                # hedged-past hang may still be sleeping in one — the
                # recovery wall is the run, not the join.
                row["wall_ms"] = (_time.perf_counter() - start) * 1e3
            finally:
                backend.close()
            health = result.health
            row["detail"] = (
                f"{health['retries']} retries, {health['timeouts']} "
                f"timeouts, {health['crashes']} crashes, "
                f"{health['hedges']} hedges"
            )
        row["recovered"] = cycle_fingerprint(result) == reference
        if not row["recovered"]:
            row["detail"] = "cycle fingerprint diverged; " + row["detail"]
    except ReproError as error:
        row["detail"] = f"{type(error).__name__}: {error}"
    if not row["wall_ms"]:
        row["wall_ms"] = (_time.perf_counter() - start) * 1e3
    return row


def _cmd_chaos(args: argparse.Namespace) -> int:
    try:
        kinds = tuple(k for k in args.kinds.split("+") if k)
        unknown = [k for k in kinds if k not in CHAOS_KINDS]
        if not kinds or unknown:
            raise ConfigurationError(
                f"unknown fault kind(s) {'+'.join(unknown) or '(none)'}; "
                f"choose from {'+'.join(CHAOS_KINDS)}"
            )
    except ConfigurationError as error:
        print(f"repro chaos: {error}", file=sys.stderr)
        return 2
    bench = build_benchmark(args.benchmark, scale=args.scale, seed=args.seed)
    data = bench.trace(args.trace_bytes, args.seed + 1)
    config = replace(
        DEFAULT_CONFIG, geometry=BoardGeometry(ranks=args.ranks)
    )
    pap = ParallelAutomataProcessor(
        bench.automaton, config=config, half_cores=bench.half_cores
    )
    cold = pap.run(data)
    reference = cycle_fingerprint(cold)
    coords = _chaos_coordinates(cold.num_segments, args.segments)
    print(
        f"chaos sweep: {args.benchmark}, {cold.num_segments} segments, "
        f"{len(kinds)} kind(s) x {len(coords)} coordinate(s)",
        file=sys.stderr,
    )
    rows = [
        _chaos_trial(pap, data, reference, kind, segment, args)
        for kind in kinds
        for segment in coords
    ]
    failed = [row for row in rows if not row["recovered"]]
    if args.format == "json":
        print(json.dumps({"rows": rows, "failed": len(failed)}, indent=2))
    else:
        print(f"{'Kind':<20}{'Seg':>5}  {'Recovered':<10}"
              f"{'Wall(ms)':>9}  Detail")
        for row in rows:
            status = "OK" if row["recovered"] else "FAILED"
            print(
                f"{row['kind']:<20}{row['segment']:>5}  {status:<10}"
                f"{row['wall_ms']:>9.1f}  {row['detail']}"
            )
        print(
            f"{len(rows) - len(failed)}/{len(rows)} recoveries bit-exact"
        )
    return 1 if failed else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.validate:
        try:
            with open(args.target, "r", encoding="utf-8") as handle:
                trace = json.load(handle)
            payload = validate_chrome_trace(trace)
        except (OSError, ValueError) as error:
            print(f"invalid trace {args.target!r}: {error}")
            return 1
        tracks = {
            record["tid"] for record in payload if "tid" in record
        }
        print(
            f"{args.target}: valid Chrome trace-event JSON "
            f"({len(payload)} events on {len(tracks)} track(s), "
            f"domain {trace.get('otherData', {}).get('domain', '?')})"
        )
        return 0
    if args.target not in BENCHMARK_NAMES:
        raise SystemExit(
            f"unknown benchmark {args.target!r} (see `repro list`); "
            "to check an existing trace file use --validate"
        )
    bench = build_benchmark(args.target, scale=args.scale, seed=args.seed)
    tracer = Tracer()
    run = run_benchmark(
        bench,
        ranks=args.ranks,
        trace_bytes=args.trace_bytes,
        trace_seed=args.seed + 1,
        observer=tracer,
    )
    output = args.output or f"{args.target}.trace.json"
    tracer.write_chrome(output, domain=args.domain)
    print(
        f"{run.name}: {len(tracer.events)} trace events "
        f"across {len(tracer.tracks())} tracks -> {output} "
        f"({args.domain} domain, open in ui.perfetto.dev)"
    )
    if args.profile:
        print(tracer.text_profile())
    return 0 if run.reports_match else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.validate:
        try:
            with open(args.target, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            validate_speedscope(payload)
        except (OSError, ValueError) as error:
            print(f"invalid profile {args.target!r}: {error}")
            return 1
        profiles = payload.get("profiles", [])
        events = sum(len(p.get("events", [])) for p in profiles)
        print(
            f"{args.target}: valid speedscope profile "
            f"({len(profiles)} profile(s), {events} events, "
            f"{len(payload['shared']['frames'])} frames)"
        )
        return 0
    if args.target not in BENCHMARK_NAMES:
        raise SystemExit(
            f"unknown benchmark {args.target!r} (see `repro list`); "
            "to check an existing speedscope file use --validate"
        )
    bench = build_benchmark(args.target, scale=args.scale, seed=args.seed)
    config = (
        replace(DEFAULT_CONFIG, use_fiv=False)
        if args.no_fiv
        else DEFAULT_CONFIG
    )
    try:
        backend = resolve_backend(args.backend, workers=args.workers)
    except ConfigurationError as error:
        print(f"repro profile: {error}", file=sys.stderr)
        return 2
    # A tracer enables the wall-phase accumulator, so the table carries
    # host time alongside the exact cycle attribution.
    tracer = Tracer()
    try:
        run = run_benchmark(
            bench,
            ranks=args.ranks,
            trace_bytes=args.trace_bytes,
            modeled_bytes=PAPER_BYTES.get(args.model_input),
            trace_seed=args.seed + 1,
            config=config,
            observer=tracer,
            backend=backend,
        )
    finally:
        backend.close()
    # The accounting identities are checked on every invocation — a
    # profile whose rows don't sum to the run is worse than none.
    check = verify_phase_totals(run.pap)
    phases = run.pap.phases
    out_stream = sys.stderr if args.format == "json" else sys.stdout
    if args.format == "json":
        print(json.dumps({"benchmark": run.name, **phases}, indent=2))
    else:
        print(f"benchmark        : {run.name} (scale {args.scale})")
        print(render_phase_profile(phases, per_segment=not args.totals_only))
        print(
            f"accounting       : {check['checks']} identities verified "
            f"across {check['segments']} segment(s), "
            f"{check['accounted_cycles']} cycles accounted"
        )
    if args.speedscope:
        payload = to_speedscope(phases, name=f"{run.name} phase profile")
        validate_speedscope(payload)
        with open(args.speedscope, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(
            f"profile written  : {args.speedscope} "
            "(open in speedscope.app)",
            file=out_stream,
        )
    if args.folded:
        with open(args.folded, "w", encoding="utf-8") as handle:
            handle.write(to_folded(phases, root=run.name))
        print(
            f"folded written   : {args.folded} (collapsed-stack format)",
            file=out_stream,
        )
    return 0 if run.reports_match else 1


def _cmd_bench_run(args: argparse.Namespace) -> int:
    try:
        names = select_benchmarks(args.benchmarks)
    except ConfigurationError as error:
        # A bad workload *name* is an operational failure (exit 1, like
        # any other run that cannot produce an artifact), not a usage
        # error: the flag was well-formed, the suite just lacks it.
        print(f"repro bench run: {error}", file=sys.stderr)
        return 1
    try:
        retry, faults = _resilience_from_args(args)
        hedge, breaker, _ = _durability_from_args(args)
    except ConfigurationError as error:
        print(f"repro bench run: {error}", file=sys.stderr)
        return 2
    try:
        report = run_bench_suite(
            names,
            label=args.label,
            scale=args.scale,
            seed=args.seed,
            ranks=args.ranks,
            trace_bytes=args.trace_bytes,
            modeled_bytes=PAPER_BYTES.get(args.model_input),
            warmup=args.warmup,
            repeats=args.repeats,
            backend=args.backend,
            workers=args.workers,
            use_fiv=not args.no_fiv,
            retry=retry,
            faults=faults,
            hedge=hedge,
            breaker=breaker,
            checkpoint=args.checkpoint,
            resume=args.resume,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except ConfigurationError as error:
        print(f"repro bench run: {error}", file=sys.stderr)
        return 2
    out = args.out or f"BENCH_{args.label}.json"
    path = report.write(out)
    print(render_report(report, args.format))
    print(f"[artifact written to {path}]", file=sys.stderr)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    try:
        baseline = load_report(args.baseline)
        candidate = load_report(args.candidate)
    except ArtifactError as error:
        print(f"repro bench compare: {error}", file=sys.stderr)
        return 2
    policy = TolerancePolicy(
        wall_rel_tolerance=args.wall_tolerance,
        mad_factor=args.mad_factor,
    )
    diff = compare_reports(baseline, candidate, policy=policy)
    print(render_diff(diff, args.format))
    if args.fail_on == "never":
        return 0
    domains = (
        (CYCLE_DOMAIN, "suite")
        if args.fail_on == "cycles"
        else (CYCLE_DOMAIN, WALL_DOMAIN, "suite")
    )
    return 1 if diff.regressions_in(domains) else 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    try:
        report = load_report(args.artifact)
    except ArtifactError as error:
        print(f"repro bench report: {error}", file=sys.stderr)
        return 2
    print(render_report(report, args.format))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_bench_run,
        "compare": _cmd_bench_compare,
        "report": _cmd_bench_report,
    }
    return handlers[args.bench_command](args)


def _obs_read_text(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as error:
        raise ArtifactError(f"cannot read {path!r}: {error}") from error


def _ledger_close_metrics(records: list[dict]) -> dict:
    """The metrics snapshot embedded in a ledger's close record."""
    for record in reversed(records):
        if record["kind"] == "close":
            return (record.get("args") or {}).get("metrics", {})
    raise ArtifactError(
        "ledger has no close record (run was not sealed); "
        "no metrics snapshot to export"
    )


def _obs_load_samples(path: str) -> dict[str, float]:
    """Load a ledger or an OpenMetrics file as a flat sample map."""
    text = _obs_read_text(path)
    if text.lstrip().startswith("{"):
        return parse_openmetrics(
            render_openmetrics(_ledger_close_metrics(read_ledger(path)))
        )
    try:
        return parse_openmetrics(text)
    except ValueError as error:
        raise ArtifactError(f"{path}: {error}") from error


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    text = _obs_read_text(args.target)
    if text.lstrip().startswith("{"):
        records = read_ledger(args.target)
        summary = summarize_ledger(records)
        if args.format == "json":
            print(json.dumps(summary, indent=2))
            return 0
        print(f"ledger           : {args.target}")
        print(f"run              : {summary['run_id']}")
        print(
            f"schema           : v{summary['schema_version']}, "
            f"{summary['records']} records, "
            f"sealed {'yes' if summary['sealed'] else 'NO'}"
        )
        kinds = ", ".join(
            f"{count} {kind}" for kind, count in summary["kinds"].items()
        )
        print(f"records          : {kinds}")
        print(f"wall time        : {summary['wall_ns'] / 1e6:.2f} ms")
        if "failure" in summary:
            failure = summary["failure"]
            print(
                f"failure          : {failure['type']}: "
                f"{failure['message']}"
            )
        metrics = summary.get("metrics", {})
        if metrics:
            print(f"metrics          : {len(metrics)} instruments")
        workers = summary.get("workers")
        if workers:
            print(
                f"workers          : {len(workers['pids'])} pid(s), "
                f"{workers['batches']} batches, "
                f"{workers['records']} shipped records"
            )
            print(
                f"worker wall      : {workers['worker_wall_ms']:.2f} ms "
                f"measured in-worker vs {workers['dispatch_wall_ms']:.2f} ms "
                f"across {workers['dispatches']} dispatch span(s)"
            )
            for pid, row in sorted(workers["per_pid"].items()):
                segments = ",".join(str(s) for s in row["segments"])
                print(
                    f"  pid {pid:<10}: {row['records']} records in "
                    f"{row['batches']} batch(es), "
                    f"{row['worker_wall_ms']:.2f} ms, "
                    f"compile {row['compile_hits']} hit/"
                    f"{row['compile_misses']} miss, "
                    f"segments [{segments}]"
                )
        return 0
    try:
        samples = parse_openmetrics(text)
    except ValueError as error:
        raise ArtifactError(f"{args.target}: {error}") from error
    if args.format == "json":
        print(json.dumps(samples, indent=2, sort_keys=True))
        return 0
    families = {name.split("{")[0] for name in samples}
    print(f"exposition       : {args.target}")
    print(
        f"samples          : {len(samples)} across "
        f"{len(families)} series"
    )
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    metrics = _ledger_close_metrics(read_ledger(args.ledger))
    if args.format == "json":
        rendered = json.dumps(metrics, indent=2, sort_keys=True) + "\n"
    else:
        rendered = render_openmetrics(metrics)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"[metrics written to {args.output}]", file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    a = _obs_load_samples(args.a)
    b = _obs_load_samples(args.b)
    changed = sorted(
        name
        for name in a.keys() & b.keys()
        if a[name] != b[name]
    )
    added = sorted(b.keys() - a.keys())
    removed = sorted(a.keys() - b.keys())
    for name in changed:
        print(f"~ {name}: {a[name]:g} -> {b[name]:g}")
    for name in added:
        print(f"+ {name}: {b[name]:g}")
    for name in removed:
        print(f"- {name}: {a[name]:g}")
    if not (changed or added or removed):
        print(f"identical: {len(a)} samples")
        return 0
    print(
        f"{len(changed)} changed, {len(added)} added, "
        f"{len(removed)} removed"
    )
    return 1


def _cmd_obs(args: argparse.Namespace) -> int:
    handlers = {
        "summary": _cmd_obs_summary,
        "export": _cmd_obs_export,
        "diff": _cmd_obs_diff,
    }
    return handlers[args.obs_command](args)


def _cmd_match(args: argparse.Namespace) -> int:
    with open(args.file, "rb") as handle:
        data = handle.read()
    automaton, stats = compile_ruleset(args.pattern, name="cli")
    print(
        f"{stats.num_rules} patterns -> {automaton.num_states} states "
        f"({stats.compression:.0%} prefix compression)"
    )
    baseline = run_sequential(automaton, data)
    pap = ParallelAutomataProcessor(
        automaton, config=PAPConfig(geometry=BoardGeometry(ranks=args.ranks))
    )
    result = pap.run(data)
    status = "OK" if result.reports == baseline.reports else "MISMATCH"
    print(
        f"{len(baseline.reports)} matches over {len(data)} bytes "
        f"[verification {status}]"
    )
    print(
        f"speedup {baseline.total_cycles / max(1, result.total_cycles):.2f}x "
        f"on {result.num_segments} segments"
    )
    limit = args.show
    for report in sorted(result.reports)[:limit]:
        print(f"  rule {report.code} at offset {report.offset}")
    return 0 if status == "OK" else 1


def _lint_target(name: str, args: argparse.Namespace) -> Automaton:
    """Resolve one lint target: benchmark name, ANML-lite JSON, or
    ANML XML file."""
    if name in BENCHMARK_NAMES:
        bench = build_benchmark(name, scale=args.scale, seed=args.seed)
        return bench.automaton
    # Files load WITHOUT Automaton.validate: reporting AP001/AP002/AP003
    # on a broken automaton is the linter's job, not a crash.
    try:
        if name.endswith(".json"):
            with open(name, "r", encoding="utf-8") as handle:
                return automaton_loads(handle.read(), validate=False)
        if name.endswith((".anml", ".xml")):
            with open(name, "r", encoding="utf-8") as handle:
                return automaton_from_anml_xml(
                    handle.read(), validate=False
                )
    except (OSError, ValueError, AutomatonError) as error:
        raise SystemExit(f"cannot load {name!r}: {error}") from error
    raise SystemExit(
        f"unknown lint target {name!r}: not a benchmark name "
        f"(see `repro list`) or a .json/.anml/.xml automaton file"
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    targets = list(args.target)
    if args.suite:
        targets.extend(BENCHMARK_NAMES)
    if not targets:
        raise SystemExit("no lint targets: pass names/files or --suite")
    families = None
    if args.rules:
        families = tuple(
            family for family in args.rules.split(",") if family
        )
        try:
            rules_for(families)
        except ConfigurationError as error:
            raise SystemExit(str(error)) from error
    config = LintConfig(
        geometry=BoardGeometry(ranks=args.ranks),
        counters_used=args.counters,
        booleans_used=args.booleans,
    )
    min_severity = Severity.parse(args.severity)
    reports = []
    for name in targets:
        automaton = _lint_target(name, args)
        reports.append(
            run_lint(automaton, config=config, families=families)
        )
    if args.format == "json":
        print(render_json(reports, min_severity=min_severity))
    elif args.format == "sarif":
        print(render_sarif(reports, min_severity=min_severity))
    else:
        print(render_text(reports, min_severity=min_severity))
    return 1 if severity_gate(reports, args.fail_on) else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    names = tuple(args.target)
    if args.suite:
        names = names + tuple(
            name for name in BENCHMARK_NAMES if name not in names
        )
    if not names:
        raise SystemExit(
            "no analyze targets: pass benchmark names or --suite"
        )
    unknown = [name for name in names if name not in BENCHMARK_NAMES]
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s) {', '.join(sorted(unknown))} "
            f"(see `repro list`)"
        )
    report = analyze_suite(
        names,
        label=args.label,
        scale=args.scale,
        seed=args.seed,
        ranks=args.ranks,
        trace_bytes=args.trace_bytes,
        modeled_bytes=PAPER_BYTES.get(args.model_input),
        use_trials=not args.no_trials,
        progress=lambda line: print(line, file=sys.stderr),
    )
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, ConfigurationError) as error:
            print(f"repro analyze: {error}", file=sys.stderr)
            return 2
        report = compare_to_baseline(
            report, baseline, tolerance=args.tolerance
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"[analysis artifact written to {args.out}]", file=sys.stderr)
    if args.format == "json":
        print(report.to_json(), end="")
    elif args.format == "sarif":
        print(render_analysis_sarif(report))
    else:
        print(render_analysis_text(report))
    failed = (report.compared and not report.passed) or bool(
        report.infeasible
    )
    return 1 if failed else 0


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = []
    for name in BENCHMARK_NAMES:
        bench = build_benchmark(name, scale=args.scale, seed=args.seed)
        analysis = AutomatonAnalysis(bench.automaton)
        components = len(analysis.connected_components())
        data = bench.trace(16_384, args.seed + 7)
        choice = choose_partition_symbol(
            analysis,
            data,
            num_segments=bench.paper.segments_one_rank,
            exclude=analysis.path_independent_states(),
        )
        raw = len(analysis.symbol_range(choice.symbol))
        rows.append((bench, bench.automaton.num_states, components, raw))
    print(format_table1(rows))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    rows = []
    for name in BENCHMARK_NAMES:
        bench = build_benchmark(name, scale=args.scale, seed=args.seed)
        analysis = AutomatonAnalysis(bench.automaton)
        rows.append(
            (name, bench.automaton.num_states, range_profile(analysis))
        )
    print(format_figure3(rows))
    return 0


def _cmd_speculate(args: argparse.Namespace) -> int:
    bench = build_benchmark(args.benchmark, scale=args.scale, seed=args.seed)
    data = bench.trace(args.trace_bytes, args.seed + 1)
    baseline = run_sequential(bench.automaton, data)
    config = PAPConfig(geometry=BoardGeometry(ranks=args.ranks))
    for predictor in ("cold", "profile"):
        spec = SpeculativeAutomataProcessor(
            bench.automaton,
            config=config,
            half_cores=bench.half_cores,
            predictor=predictor,
        )
        result = spec.run(data)
        ok = result.reports == baseline.reports
        print(
            f"{predictor:<8} speedup "
            f"{baseline.total_cycles / max(1, result.total_cycles):6.2f}x  "
            f"accuracy {result.prediction_accuracy * 100:5.1f}%  "
            f"mispredictions {result.mispredictions}  "
            f"[{'OK' if ok else 'MISMATCH'}]"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel Automata Processor reproduction "
            "(Subramaniyan & Das, ISCA 2017)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the evaluation benchmarks")

    run_parser = commands.add_parser("run", help="run one benchmark")
    run_parser.add_argument("benchmark", choices=BENCHMARK_NAMES)
    run_parser.add_argument("--ranks", type=int, default=1, choices=(1, 2, 4))
    run_parser.add_argument("--trace-bytes", type=int, default=65_536)
    run_parser.add_argument(
        "--model-input",
        choices=("1MB", "10MB"),
        default="1MB",
        help="paper input size the trace stands in for",
    )
    run_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="summary output format",
    )
    run_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace-event JSON of the run (Perfetto)",
    )
    run_parser.add_argument(
        "--trace-domain",
        choices=("cycles", "wall"),
        default="cycles",
        help="time domain of the exported trace",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="print the aggregated text profile after the summary",
    )
    run_parser.add_argument(
        "--ledger",
        metavar="PATH",
        help=(
            "record the run to a JSONL flight-recorder ledger; on "
            "failure a crash bundle is written next to it "
            "(PATH.crash.json)"
        ),
    )
    run_parser.add_argument(
        "--metrics-export",
        metavar="PATH",
        help=(
            "write the run's metrics registry as an OpenMetrics/"
            "Prometheus text exposition"
        ),
    )
    run_parser.add_argument(
        "--drift-baseline",
        metavar="ANALYZE_JSON",
        help=(
            "ANALYZE_*.json artifact with this benchmark's cost-model "
            "prediction; the run is checked live against it and AP4xx "
            "drift diagnostics are reported"
        ),
    )
    run_parser.add_argument(
        "--drift-tolerance",
        type=float,
        default=0.10,
        help=(
            "relative divergence beyond which a drift diagnostic "
            "fires (default 0.10)"
        ),
    )
    _add_backend(run_parser)
    _add_resilience(run_parser)
    _add_common(run_parser)

    chaos_parser = commands.add_parser(
        "chaos",
        help="seeded fault-matrix sweep with bit-exact recovery gating",
        description=(
            "Sweep a fault matrix (kind x segment coordinate) over one "
            "workload: each cell injects a deterministic fault, lets "
            "the recovery machinery (retries, timeouts, hedging, "
            "checkpoint resume) handle it, and verifies the recovered "
            "run's cycle fingerprint against the fault-free run. "
            "Exit codes: 0 all recoveries bit-exact, 1 any divergence "
            "or unrecovered fault, 2 usage."
        ),
    )
    chaos_parser.add_argument("benchmark", choices=BENCHMARK_NAMES)
    chaos_parser.add_argument(
        "--kinds",
        default="crash+hang+transient+straggler",
        help=(
            "'+'-separated fault kinds to sweep "
            f"(any of {'+'.join(CHAOS_KINDS)})"
        ),
    )
    chaos_parser.add_argument(
        "--segments",
        type=int,
        default=3,
        help="segment coordinates per kind, spread over the run",
    )
    chaos_parser.add_argument(
        "--ranks", type=int, default=1, choices=(1, 2, 4)
    )
    chaos_parser.add_argument("--trace-bytes", type=int, default=16_384)
    chaos_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the faulted process-backend trials",
    )
    chaos_parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-executions allowed per segment in each trial",
    )
    chaos_parser.add_argument(
        "--segment-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-segment dispatch timeout (recovers hang faults)",
    )
    chaos_parser.add_argument(
        "--hang",
        type=float,
        default=6.0,
        metavar="SECONDS",
        help=(
            "injected hang duration; exceeds --segment-timeout so the "
            "deadline path must fire whenever hedging cannot beat it"
        ),
    )
    chaos_parser.add_argument(
        "--straggler",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="injected straggler delay (hedging should beat it)",
    )
    chaos_parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    _add_common(chaos_parser)

    trace_parser = commands.add_parser(
        "trace",
        help="record or validate a PAP execution trace",
        description=(
            "Run one benchmark under the repro.obs tracer and write "
            "Chrome trace-event JSON (loadable in ui.perfetto.dev), "
            "or validate an existing trace file with --validate."
        ),
    )
    trace_parser.add_argument(
        "target", help="benchmark name, or a trace .json with --validate"
    )
    trace_parser.add_argument(
        "--validate",
        action="store_true",
        help="treat TARGET as a trace file and check its shape",
    )
    trace_parser.add_argument(
        "-o", "--output", help="trace path (default <benchmark>.trace.json)"
    )
    trace_parser.add_argument(
        "--domain",
        choices=("cycles", "wall"),
        default="cycles",
        help="time domain of the exported trace",
    )
    trace_parser.add_argument(
        "--profile",
        action="store_true",
        help="also print the aggregated text profile",
    )
    trace_parser.add_argument(
        "--ranks", type=int, default=1, choices=(1, 2, 4)
    )
    trace_parser.add_argument("--trace-bytes", type=int, default=65_536)
    _add_common(trace_parser)

    profile_parser = commands.add_parser(
        "profile",
        help="phase-attribution profile of one run (repro.obs.phases)",
        description=(
            "Run one benchmark and attribute its cost to execution "
            "phases (transition / switch / convergence / decode / "
            "report) in both the cycle and wall domains. Cycle rows "
            "are verified to sum exactly to the run's totals before "
            "anything is printed. Exports: --speedscope (open in "
            "speedscope.app) and --folded (flamegraph collapsed-stack "
            "format); --validate checks an existing speedscope file."
        ),
    )
    profile_parser.add_argument(
        "target",
        help="benchmark name, or a speedscope .json with --validate",
    )
    profile_parser.add_argument(
        "--validate",
        action="store_true",
        help="treat TARGET as a speedscope file and check its shape",
    )
    profile_parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="phase summary output format",
    )
    profile_parser.add_argument(
        "--totals-only",
        action="store_true",
        help="omit the per-segment rows from the table",
    )
    profile_parser.add_argument(
        "--speedscope",
        metavar="PATH",
        help="write the cycle attribution as a speedscope JSON profile",
    )
    profile_parser.add_argument(
        "--folded",
        metavar="PATH",
        help="write the cycle attribution as collapsed stacks",
    )
    profile_parser.add_argument(
        "--ranks", type=int, default=1, choices=(1, 2, 4)
    )
    profile_parser.add_argument("--trace-bytes", type=int, default=65_536)
    profile_parser.add_argument(
        "--model-input",
        choices=("1MB", "10MB"),
        default="1MB",
        help="paper input size the trace stands in for",
    )
    _add_backend(profile_parser)
    _add_common(profile_parser)

    bench_parser = commands.add_parser(
        "bench",
        help="benchmark artifacts and regression gating (repro.perf)",
        description=(
            "Capture machine-readable BENCH_*.json benchmark artifacts, "
            "diff them under the dual-domain tolerance policy "
            "(cycle metrics exact, wall-clock statistical), and render "
            "reports. Exit codes: 0 clean, 1 regressions, 2 usage."
        ),
    )
    bench_commands = bench_parser.add_subparsers(
        dest="bench_command", required=True
    )

    bench_run = bench_commands.add_parser(
        "run", help="run benchmarks and write a BENCH_*.json artifact"
    )
    bench_run.add_argument(
        "--benchmarks",
        default="",
        help=(
            "comma-separated subset (default: $REPRO_BENCH_ONLY, "
            "else the full suite)"
        ),
    )
    bench_run.add_argument("--ranks", type=int, default=1, choices=(1, 2, 4))
    bench_run.add_argument("--trace-bytes", type=int, default=65_536)
    bench_run.add_argument(
        "--model-input",
        choices=("1MB", "10MB"),
        default="1MB",
        help="paper input size the trace stands in for",
    )
    bench_run.add_argument(
        "--warmup", type=int, default=1, help="unrecorded warmup passes"
    )
    bench_run.add_argument(
        "--repeats", type=int, default=3, help="recorded wall-clock passes"
    )
    bench_run.add_argument("--label", default="local")
    bench_run.add_argument(
        "-o", "--out", help="artifact path (default BENCH_<label>.json)"
    )
    bench_run.add_argument(
        "--format", choices=("text", "markdown", "json"), default="text"
    )
    _add_backend(bench_run)
    _add_resilience(bench_run)
    _add_common(bench_run)

    bench_compare = bench_commands.add_parser(
        "compare", help="diff two artifacts; exit 1 on regressions"
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json")
    bench_compare.add_argument("candidate", help="candidate BENCH_*.json")
    bench_compare.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.10,
        help="relative wall-clock threshold over median±MAD (default 0.10)",
    )
    bench_compare.add_argument(
        "--mad-factor",
        type=float,
        default=3.0,
        help="MAD multiples added to the wall-clock noise band",
    )
    bench_compare.add_argument(
        "--fail-on",
        choices=("any", "cycles", "never"),
        default="any",
        help=(
            "which regression domains exit 1 (CI uses 'cycles' so "
            "cross-machine wall noise never gates)"
        ),
    )
    bench_compare.add_argument(
        "--format", choices=("text", "markdown", "json"), default="text"
    )

    bench_report = bench_commands.add_parser(
        "report", help="render one artifact"
    )
    bench_report.add_argument("artifact", help="a BENCH_*.json file")
    bench_report.add_argument(
        "--format", choices=("text", "markdown", "json"), default="text"
    )

    obs_parser = commands.add_parser(
        "obs",
        help="inspect run telemetry: ledgers and metric exports",
        description=(
            "Work with repro.obs.telemetry artifacts: summarize and "
            "validate JSONL run ledgers or OpenMetrics expositions, "
            "export a ledger's metrics snapshot, and diff two metric "
            "sets. Exit codes: 0 clean/identical, 1 invalid artifact "
            "or differences, 2 usage."
        ),
    )
    obs_commands = obs_parser.add_subparsers(
        dest="obs_command", required=True
    )
    obs_summary = obs_commands.add_parser(
        "summary",
        help="validate + summarize a ledger or OpenMetrics file",
    )
    obs_summary.add_argument(
        "target", help="a JSONL ledger or an OpenMetrics .prom file"
    )
    obs_summary.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    obs_export = obs_commands.add_parser(
        "export",
        help="render a sealed ledger's metrics snapshot",
    )
    obs_export.add_argument("ledger", help="a JSONL flight-recorder ledger")
    obs_export.add_argument(
        "-o", "--output", help="write here instead of stdout"
    )
    obs_export.add_argument(
        "--format", choices=("openmetrics", "json"), default="openmetrics"
    )
    obs_diff = obs_commands.add_parser(
        "diff",
        help="diff two metric sets; exit 1 when they differ",
    )
    obs_diff.add_argument(
        "a", help="baseline ledger or OpenMetrics file"
    )
    obs_diff.add_argument(
        "b", help="candidate ledger or OpenMetrics file"
    )

    match_parser = commands.add_parser(
        "match", help="scan a file with regex patterns"
    )
    match_parser.add_argument("file")
    match_parser.add_argument(
        "--pattern", action="append", required=True, help="repeatable"
    )
    match_parser.add_argument("--ranks", type=int, default=1, choices=(1, 2, 4))
    match_parser.add_argument("--show", type=int, default=10)

    lint_parser = commands.add_parser(
        "lint",
        help="static diagnostics for automata (apcheck)",
        description=(
            "Run the apcheck static-analysis pass: structural "
            "well-formedness, parallelization risk, and AP capacity "
            "diagnostics with stable AP0xx/AP1xx/AP2xx codes."
        ),
    )
    lint_parser.add_argument(
        "target",
        nargs="*",
        help="benchmark names (see `repro list`) or .json/.anml/.xml files",
    )
    lint_parser.add_argument(
        "--suite",
        action="store_true",
        help="lint every bundled benchmark generator",
    )
    lint_parser.add_argument(
        "--rules",
        default="",
        help=f"comma-separated rule families ({', '.join(FAMILIES)})",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint_parser.add_argument(
        "--severity",
        choices=("info", "warning", "error"),
        default="info",
        help="minimum severity to display",
    )
    lint_parser.add_argument(
        "--fail-on",
        choices=("info", "warning", "error", "never"),
        default="error",
        help="exit 1 when diagnostics at/above this severity exist",
    )
    lint_parser.add_argument("--ranks", type=int, default=4, choices=(1, 2, 4))
    lint_parser.add_argument(
        "--counters",
        type=int,
        default=0,
        help="counter elements the deployment will program",
    )
    lint_parser.add_argument(
        "--booleans",
        type=int,
        default=0,
        help="boolean elements the deployment will program",
    )
    _add_common(lint_parser)

    analyze_parser = commands.add_parser(
        "analyze",
        help="predictive parallelizability analysis (repro.analyze)",
        description=(
            "Run the semantic static-analysis pass: divergence facts, "
            "the cycle cost model (predicted enumeration cycles and "
            "speedup per workload), and the constructive capacity "
            "planner. With --baseline, predictions are gated against a "
            "committed BENCH_*.json artifact. Exit codes: 0 clean, 1 "
            "gate failure or infeasible plan, 2 usage."
        ),
    )
    analyze_parser.add_argument(
        "target",
        nargs="*",
        help="benchmark names (see `repro list`)",
    )
    analyze_parser.add_argument(
        "--suite",
        action="store_true",
        help="analyze every bundled benchmark",
    )
    analyze_parser.add_argument(
        "--ranks", type=int, default=1, choices=(1, 2, 4)
    )
    analyze_parser.add_argument("--trace-bytes", type=int, default=65_536)
    analyze_parser.add_argument(
        "--model-input",
        choices=("1MB", "10MB"),
        default="1MB",
        help="paper input size the trace stands in for",
    )
    analyze_parser.add_argument(
        "--no-trials",
        action="store_true",
        help=(
            "skip concrete refinement trials; unresolved flows are "
            "pessimistically treated as survivors (fully abstract pass)"
        ),
    )
    analyze_parser.add_argument(
        "--baseline",
        metavar="BENCH_JSON",
        help="BENCH_*.json artifact to gate predictions against",
    )
    analyze_parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=(
            "relative prediction-error budget per workload "
            f"(default {DEFAULT_TOLERANCE})"
        ),
    )
    analyze_parser.add_argument("--label", default="local")
    analyze_parser.add_argument(
        "-o", "--out", help="write the full analysis report JSON here"
    )
    analyze_parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    _add_common(analyze_parser)

    table_parser = commands.add_parser(
        "table1", help="regenerate Table 1 characteristics"
    )
    _add_common(table_parser)

    fig3_parser = commands.add_parser(
        "fig3", help="regenerate Figure 3 range profiles"
    )
    _add_common(fig3_parser)

    spec_parser = commands.add_parser(
        "speculate", help="run the speculation extension"
    )
    spec_parser.add_argument("benchmark", choices=BENCHMARK_NAMES)
    spec_parser.add_argument("--ranks", type=int, default=1, choices=(1, 2, 4))
    spec_parser.add_argument("--trace-bytes", type=int, default=65_536)
    _add_common(spec_parser)

    return parser


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
    "obs": _cmd_obs,
    "match": _cmd_match,
    "lint": _cmd_lint,
    "analyze": _cmd_analyze,
    "table1": _cmd_table1,
    "fig3": _cmd_fig3,
    "speculate": _cmd_speculate,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0
    except ReproError as error:
        # Operational failures (execution errors, lint gate rejections,
        # exhausted retries, ...) exit 1 with a one-line message; a
        # traceback is for repro bugs, not for runs that legitimately
        # failed.  Exit 2 stays reserved for usage errors.
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

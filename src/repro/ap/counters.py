"""Counter and boolean elements.

Beyond STEs, each D480 device provides 768 saturating counters and
2,304 programmable boolean elements "to augment pattern matching
functionality" (Section 2.1).  Counters accumulate activations of their
input elements and fire when a programmed target is reached; booleans
combine same-cycle activations.  The canonical use is support counting:
SPM-style mining does not stream every pattern occurrence to the host —
a counter per candidate fires once at the support threshold.

The model consumes the element-activation event stream (the executor's
reports) rather than instrumenting the executor: counter inputs are
wired to report-capable elements, exactly as AP designs route STE
outputs into counter inputs.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.automata.execution import Report
from repro.ap.geometry import BOOLEAN_ELEMENTS_PER_DEVICE, COUNTERS_PER_DEVICE
from repro.errors import CapacityError, ConfigurationError


class CounterMode(enum.Enum):
    """What happens when the counter reaches its target.

    ``LATCH``
        Fire once, then hold (further inputs ignored).
    ``PULSE``
        Fire on every input once at/beyond the target.
    ``ROLL``
        Fire and reset to zero (fires every ``target`` activations).
    """

    LATCH = "latch"
    PULSE = "pulse"
    ROLL = "roll"


@dataclass(frozen=True, order=True)
class CounterEvent:
    """A counter firing: ``counter_id`` hit its target at ``offset``."""

    offset: int
    counter_id: int
    count: int


@dataclass
class CounterElement:
    """One saturating up-counter."""

    counter_id: int
    inputs: frozenset[int]
    """Element ids whose activations increment the counter."""
    target: int
    mode: CounterMode = CounterMode.LATCH
    count: int = 0
    latched: bool = False

    def __post_init__(self) -> None:
        if self.target < 1:
            raise ConfigurationError("counter target must be at least 1")
        if not self.inputs:
            raise ConfigurationError("counter needs at least one input")

    def feed(self, offset: int, activations: int) -> CounterEvent | None:
        """Apply ``activations`` same-cycle input firings."""
        if activations <= 0 or (self.latched and self.mode is CounterMode.LATCH):
            return None
        self.count += activations
        if self.count < self.target:
            return None
        if self.mode is CounterMode.LATCH:
            self.latched = True
            return CounterEvent(offset=offset, counter_id=self.counter_id, count=self.count)
        if self.mode is CounterMode.ROLL:
            fired = CounterEvent(offset=offset, counter_id=self.counter_id, count=self.count)
            self.count = 0
            return fired
        return CounterEvent(offset=offset, counter_id=self.counter_id, count=self.count)

    def reset(self) -> None:
        self.count = 0
        self.latched = False


@dataclass
class BooleanElement:
    """A programmable gate over same-cycle element activations."""

    boolean_id: int
    function: str  # "and" | "or" | "nand" | "nor"
    inputs: frozenset[int]

    def __post_init__(self) -> None:
        if self.function not in {"and", "or", "nand", "nor"}:
            raise ConfigurationError(f"unknown boolean function {self.function!r}")
        if not self.inputs:
            raise ConfigurationError("boolean element needs inputs")

    def evaluate(self, fired: frozenset[int]) -> bool:
        hits = len(self.inputs & fired)
        if self.function == "and":
            return hits == len(self.inputs)
        if self.function == "or":
            return hits > 0
        if self.function == "nand":
            return hits < len(self.inputs)
        return hits == 0  # nor


@dataclass
class CounterBank:
    """A device's worth of counters and booleans, fed by reports.

    :meth:`process` consumes a report stream (offset-sorted or not),
    groups activations per input offset — counters and booleans see
    *cycles*, not individual wires — and returns the counter events and
    boolean firings.
    """

    counters: list[CounterElement] = field(default_factory=list)
    booleans: list[BooleanElement] = field(default_factory=list)
    counter_capacity: int = COUNTERS_PER_DEVICE
    boolean_capacity: int = BOOLEAN_ELEMENTS_PER_DEVICE

    def add_counter(
        self,
        inputs: Iterable[int],
        target: int,
        *,
        mode: CounterMode = CounterMode.LATCH,
    ) -> int:
        if len(self.counters) >= self.counter_capacity:
            raise CapacityError(
                f"device provides only {self.counter_capacity} counters"
            )
        counter_id = len(self.counters)
        self.counters.append(
            CounterElement(
                counter_id=counter_id,
                inputs=frozenset(inputs),
                target=target,
                mode=mode,
            )
        )
        return counter_id

    def add_boolean(self, function: str, inputs: Iterable[int]) -> int:
        if len(self.booleans) >= self.boolean_capacity:
            raise CapacityError(
                f"device provides only {self.boolean_capacity} boolean elements"
            )
        boolean_id = len(self.booleans)
        self.booleans.append(
            BooleanElement(
                boolean_id=boolean_id,
                function=function,
                inputs=frozenset(inputs),
            )
        )
        return boolean_id

    def process(
        self, reports: Iterable[Report]
    ) -> tuple[list[CounterEvent], list[tuple[int, int]]]:
        """Run the element network over a report stream.

        Returns (counter events, boolean firings) where a boolean
        firing is ``(offset, boolean_id)``.
        """
        by_offset: dict[int, set[int]] = {}
        for report in reports:
            by_offset.setdefault(report.offset, set()).add(report.element)

        counter_events: list[CounterEvent] = []
        boolean_firings: list[tuple[int, int]] = []
        for offset in sorted(by_offset):
            fired = frozenset(by_offset[offset])
            for counter in self.counters:
                event = counter.feed(offset, len(counter.inputs & fired))
                if event is not None:
                    counter_events.append(event)
            for gate in self.booleans:
                if gate.evaluate(fired):
                    boolean_firings.append((offset, gate.boolean_id))
        return counter_events, boolean_firings

    def reset(self) -> None:
        for counter in self.counters:
            counter.reset()

"""Automata Processor hardware model: geometry, devices, flows, timing,
placement, and the sequential baseline."""

from repro.ap.counters import (
    BooleanElement,
    CounterBank,
    CounterElement,
    CounterEvent,
    CounterMode,
)
from repro.ap.device import Board, Device, HalfCore
from repro.ap.events import OutputEvent, OutputEventBuffer
from repro.ap.flows import ApFlow
from repro.ap.tenancy import MultiStreamScheduler, StreamJob, TenancyResult
from repro.ap.geometry import (
    FOUR_RANKS,
    ONE_RANK,
    STATE_VECTOR_BITS,
    STATE_VECTOR_CACHE_ENTRIES,
    STES_PER_HALF_CORE,
    BoardGeometry,
)
from repro.ap.placement import Placement, place_automaton, segments_available
from repro.ap.routing import RoutingMatrix
from repro.ap.sequential import BaselineResult, run_sequential
from repro.ap.state_vector import StateVector, StateVectorCache
from repro.ap.ste import SteArray, SteColumn
from repro.ap.timing import DEFAULT_TIMING, SYMBOL_CYCLE_NS, TimingModel

__all__ = [
    "ApFlow",
    "BaselineResult",
    "Board",
    "BoardGeometry",
    "BooleanElement",
    "CounterBank",
    "CounterElement",
    "CounterEvent",
    "CounterMode",
    "DEFAULT_TIMING",
    "Device",
    "MultiStreamScheduler",
    "StreamJob",
    "TenancyResult",
    "FOUR_RANKS",
    "HalfCore",
    "ONE_RANK",
    "OutputEvent",
    "OutputEventBuffer",
    "Placement",
    "RoutingMatrix",
    "STATE_VECTOR_BITS",
    "STATE_VECTOR_CACHE_ENTRIES",
    "STES_PER_HALF_CORE",
    "SYMBOL_CYCLE_NS",
    "StateVector",
    "StateVectorCache",
    "SteArray",
    "SteColumn",
    "TimingModel",
    "place_automaton",
    "run_sequential",
    "segments_available",
]

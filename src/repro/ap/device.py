"""Device composition: half-cores, D480 devices, ranks, boards.

The hierarchy mirrors Section 2.1: a board holds 4 ranks of 8 D480
devices; each device has 2 half-cores of 24,576 STEs, a state-vector
cache (512 entries), and an output event buffer.  Loading an automaton
programs STE columns and the routing matrix of each occupied half-core
according to a :class:`~repro.ap.placement.Placement`.

The functional truth of execution lives in
:mod:`repro.automata.execution`; this module provides the structural
model (capacities, per-half-core state, programming) that the
sequential baseline and the PAP scheduler hang their accounting on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.ap.events import OutputEventBuffer
from repro.ap.geometry import BoardGeometry, STES_PER_HALF_CORE
from repro.ap.placement import Placement, place_automaton
from repro.ap.routing import RoutingMatrix
from repro.ap.state_vector import StateVectorCache
from repro.ap.ste import SteArray
from repro.errors import PlacementError


@dataclass
class HalfCore:
    """One half-core: an STE array plus its routing matrix."""

    index: int
    capacity: int = STES_PER_HALF_CORE
    stes: SteArray = field(init=False)
    routing: RoutingMatrix = field(init=False)
    loaded_states: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.stes = SteArray(self.capacity)
        self.routing = RoutingMatrix(self.capacity)

    def load(
        self, automaton: Automaton, states: list[int]
    ) -> None:
        """Program ``states`` (global automaton ids) onto this half-core.

        Local STE slots are assigned densely; the routing matrix gets
        every automaton edge with both endpoints here.  Edges leaving
        the set would be unroutable and raise.
        """
        if len(states) > self.capacity:
            raise PlacementError(
                f"half-core {self.index}: {len(states)} states exceed "
                f"capacity {self.capacity}"
            )
        self.loaded_states = {sid: slot for slot, sid in enumerate(states)}
        for sid, slot in self.loaded_states.items():
            self.stes.program_column(slot, automaton.state(sid).label)
        local_edges = set()
        here = self.loaded_states
        for sid in states:
            for dst in automaton.successors(sid):
                if dst not in here:
                    raise PlacementError(
                        f"edge {sid}->{dst} crosses half-core {self.index}; "
                        "the routing matrix has no inter-half-core paths"
                    )
                local_edges.add((here[sid], here[dst]))
        self.routing.program(local_edges)

    @property
    def occupancy(self) -> int:
        return len(self.loaded_states)


@dataclass
class Device:
    """One D480: two half-cores, a state-vector cache, an event buffer."""

    index: int
    geometry: BoardGeometry
    half_cores: list[HalfCore] = field(init=False)
    state_vector_cache: StateVectorCache = field(init=False)
    event_buffer: OutputEventBuffer = field(default_factory=OutputEventBuffer)

    def __post_init__(self) -> None:
        self.half_cores = [
            HalfCore(index=i, capacity=self.geometry.stes_per_half_core)
            for i in range(self.geometry.half_cores_per_device)
        ]
        self.state_vector_cache = StateVectorCache(
            capacity=self.geometry.state_vector_cache_entries
        )


@dataclass
class Board:
    """A full AP board."""

    geometry: BoardGeometry = field(default_factory=BoardGeometry)
    devices: list[Device] = field(init=False)

    def __post_init__(self) -> None:
        self.devices = [
            Device(index=i, geometry=self.geometry)
            for i in range(self.geometry.devices)
        ]

    def half_core(self, index: int) -> HalfCore:
        """Board-global half-core addressing."""
        per_device = self.geometry.half_cores_per_device
        return self.devices[index // per_device].half_cores[index % per_device]

    @property
    def num_half_cores(self) -> int:
        return self.geometry.half_cores

    def load_automaton(
        self,
        automaton: Automaton,
        *,
        placement: Placement | None = None,
        first_half_core: int = 0,
        analysis: AutomatonAnalysis | None = None,
    ) -> Placement:
        """Load one FSM replica starting at ``first_half_core``.

        Returns the placement used.  Loading ``k`` replicas at disjoint
        offsets is how the PAP runs ``k`` input segments in parallel.
        """
        analysis = analysis or AutomatonAnalysis(automaton)
        placement = placement or place_automaton(automaton, analysis=analysis)
        if first_half_core + placement.half_cores > self.num_half_cores:
            raise PlacementError(
                f"automaton {automaton.name!r} needs "
                f"{placement.half_cores} half-cores at offset "
                f"{first_half_core}, board has {self.num_half_cores}"
            )
        components = analysis.connected_components()
        per_half_core: dict[int, list[int]] = {}
        for cid, members in enumerate(components):
            target = placement.assignment[cid]
            per_half_core.setdefault(target, []).extend(sorted(members))
        for local_index, states in per_half_core.items():
            self.half_core(first_half_core + local_index).load(
                automaton, sorted(states)
            )
        return placement

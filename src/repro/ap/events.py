"""Output event buffer.

Reporting STEs write ``(report code, byte offset)`` entries into an
output event buffer that the host drains and parses (Section 2.1).  In
the PAP architecture each entry additionally carries the flow identifier
so the host can discard events generated along false enumeration paths
(Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.execution import Report
from repro.obs.tracer import NULL_OBSERVER, Observer


@dataclass(frozen=True, order=True)
class OutputEvent:
    """One buffered report event, tagged with its producing flow."""

    offset: int
    report_code: int
    element: int
    flow_id: int

    def to_report(self) -> Report:
        return Report(offset=self.offset, element=self.element, code=self.report_code)


@dataclass
class OutputEventBuffer:
    """An unbounded-drain event buffer with raw-volume accounting.

    The hardware buffer is finite and can stall the AP when full; the
    paper's runs never hit that regime ("as long as its output buffers
    ... are not full" the AP sustains one symbol per cycle), so the
    model counts volume instead of stalling.  ``raw_events`` is the
    Figure 12 numerator: all events including false-path ones.
    """

    events: list[OutputEvent] = field(default_factory=list)
    raw_events: int = 0
    observer: Observer = NULL_OBSERVER
    track: str = "run"

    def push(self, report: Report, flow_id: int) -> None:
        self.events.append(
            OutputEvent(
                offset=report.offset,
                report_code=report.code,
                element=report.element,
                flow_id=flow_id,
            )
        )
        self.raw_events += 1
        self.observer.metrics.counter("events.pushed").inc()

    def push_all(self, reports: list[Report], flow_id: int) -> None:
        for report in reports:
            self.push(report, flow_id)

    def drain(self) -> list[OutputEvent]:
        """Hand the buffered events to the host and clear the buffer."""
        drained, self.events = self.events, []
        if self.observer.enabled and drained:
            self.observer.instant(
                "buffer-drain",
                track=self.track,
                args={"events": len(drained)},
            )
        return drained

    def __len__(self) -> int:
        return len(self.events)

"""Multi-stream flow tenancy.

Flows were built into the AP so that "multiple users [can] time
multiplex the AP for independent input streams" (Section 3.2) — PAP
repurposes them for enumeration, but the original multi-tenant use is
part of the machine and modeled here: N independent (job) streams share
one programmed FSM on one half-core, each job's context living in a
state-vector-cache slot, with the 3-cycle switch charged per slice.

:class:`MultiStreamScheduler` runs the jobs to completion round-robin
and reports per-job results plus the shared-half-core cycle accounting,
so the multiplexing overhead and fairness are measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.anml import Automaton
from repro.automata.execution import (
    CompiledAutomaton,
    FlowExecution,
    Report,
)
from repro.ap.state_vector import StateVector, StateVectorCache
from repro.ap.timing import DEFAULT_TIMING, TimingModel
from repro.errors import CapacityError, ConfigurationError


@dataclass
class StreamJob:
    """One tenant: an input stream scanned by the shared FSM."""

    job_id: int
    data: bytes
    position: int = 0
    reports: frozenset[Report] = frozenset()
    finish_cycles: int | None = None

    @property
    def done(self) -> bool:
        return self.position >= len(self.data)


@dataclass
class TenancyResult:
    """Outcome of a multi-tenant run."""

    jobs: tuple[StreamJob, ...]
    total_cycles: int
    switch_cycles: int
    symbol_cycles: int

    @property
    def multiplexing_overhead(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.switch_cycles / self.total_cycles

    def job(self, job_id: int) -> StreamJob:
        return self.jobs[job_id]


class MultiStreamScheduler:
    """Round-robin TDM of independent streams over one FSM."""

    def __init__(
        self,
        automaton: Automaton,
        *,
        slice_symbols: int = 256,
        timing: TimingModel = DEFAULT_TIMING,
        cache: StateVectorCache | None = None,
    ) -> None:
        if slice_symbols < 1:
            raise ConfigurationError("slice must be at least 1 symbol")
        automaton.validate()
        self.compiled = CompiledAutomaton(automaton)
        self.slice_symbols = slice_symbols
        self.timing = timing
        self.cache = cache or StateVectorCache()

    def run(self, streams: list[bytes]) -> TenancyResult:
        """Scan every stream to completion, time-multiplexed."""
        if len(streams) > self.cache.capacity:
            raise CapacityError(
                f"{len(streams)} tenants exceed the "
                f"{self.cache.capacity}-entry state vector cache"
            )
        jobs = [
            StreamJob(job_id=index, data=data)
            for index, data in enumerate(streams)
        ]
        flows = {
            job.job_id: FlowExecution(self.compiled) for job in jobs
        }
        for job in jobs:
            self.cache.save(
                job.job_id, StateVector(active=frozenset())
            )

        time = 0
        switch_cycles = 0
        symbol_cycles = 0
        pending = [job for job in jobs if not job.done]
        for job in jobs:
            if job.done:  # empty stream
                job.finish_cycles = 0
                job.reports = frozenset()
        while pending:
            multiplexed = len(pending) > 1
            for job in list(pending):
                flow = flows[job.job_id]
                self.cache.restore(job.job_id)
                take = min(
                    self.slice_symbols, len(job.data) - job.position
                )
                flow.run(
                    job.data[job.position : job.position + take],
                    job.position,
                )
                job.position += take
                time += take
                symbol_cycles += take
                if multiplexed:
                    time += self.timing.context_switch_cycles
                    switch_cycles += self.timing.context_switch_cycles
                self.cache.save(
                    job.job_id,
                    StateVector(active=flow.state_vector()),
                )
                if job.done:
                    job.finish_cycles = time
                    job.reports = frozenset(flow.reports)
                    self.cache.invalidate(job.job_id)
                    pending.remove(job)
        return TenancyResult(
            jobs=tuple(jobs),
            total_cycles=time,
            switch_cycles=switch_cycles,
            symbol_cycles=symbol_cycles,
        )

"""Sequential AP baseline.

The paper's baseline processes the whole input on one FSM instance at
one symbol per 7.5 ns cycle.  Host-side output-report post-processing
is accounted for in both the baseline and PAP (Section 5.3, "We account
for the time taken for post-processing the output reports in both
baseline AP and PAP").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.anml import Automaton
from repro.automata.execution import (
    CompiledAutomaton,
    ExecutionResult,
    Report,
    run_automaton,
)
from repro.ap.timing import DEFAULT_TIMING, TimingModel
from repro.host.reporting import report_processing_cycles


@dataclass(frozen=True)
class BaselineResult:
    """Outcome and cost of one sequential AP run."""

    reports: frozenset[Report]
    symbol_cycles: int
    host_cycles: int
    transitions: int

    @property
    def total_cycles(self) -> int:
        return self.symbol_cycles + self.host_cycles

    def seconds(self, timing: TimingModel = DEFAULT_TIMING) -> float:
        return timing.cycles_to_seconds(self.total_cycles)


def run_sequential(
    automaton: Automaton | CompiledAutomaton,
    data: bytes,
    *,
    timing: TimingModel = DEFAULT_TIMING,
) -> BaselineResult:
    """Execute the baseline: one flow, the whole input, start to end."""
    result: ExecutionResult = run_automaton(automaton, data)
    return BaselineResult(
        reports=result.report_set,
        symbol_cycles=len(data),
        host_cycles=report_processing_cycles(len(result.reports)),
        transitions=result.transitions,
    )

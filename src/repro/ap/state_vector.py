"""State vectors and the state-vector cache.

A state vector snapshots one flow's execution: the active-state mask of
every block plus counter values — 59,936 bits on the D480.  The cache
holds up to 512 vectors per device and is what makes AP flows cheap to
switch (save + fetch + load = 3 cycles).

The paper's Section 3.3.3 augments the cache with a bitwise comparator
(one XOR per state bit into a wired AND) so convergence between two
flows is a one-cycle vector comparison, and Section 3.3.4 reuses it to
compare against the zero mask for deactivation.  Both operations are
modeled here and *counted* so the scheduler can report check volumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ap.geometry import STATE_VECTOR_BITS, STATE_VECTOR_CACHE_ENTRIES
from repro.errors import CapacityError


@dataclass(frozen=True)
class StateVector:
    """One saved execution context.

    ``active`` is the set of active STE ids; ``counters`` the counter
    values (unused by the paper's benchmarks but part of the vector).
    """

    active: frozenset[int]
    counters: tuple[int, ...] = ()

    @property
    def bits(self) -> int:
        """Architectural size of the vector in bits (constant)."""
        return STATE_VECTOR_BITS

    def is_zero(self) -> bool:
        """True when no state is active (the deactivation test)."""
        return not self.active and not any(self.counters)

    def equals(self, other: "StateVector") -> bool:
        """The comparator: bitwise equality of the two vectors."""
        return self.active == other.active and self.counters == other.counters


@dataclass
class StateVectorCache:
    """A fixed-capacity vector store with comparator instrumentation.

    Beyond the comparator counts, the cache keeps the occupancy and
    hit/miss telemetry the observability layer reports: a *hit* is a
    restore of a populated slot, a *miss* a restore of an absent one
    (which still raises — the model treats it as a programming error,
    but the counter makes the event visible in traces).
    """

    capacity: int = STATE_VECTOR_CACHE_ENTRIES
    _slots: dict[int, StateVector] = field(default_factory=dict)
    comparisons: int = 0
    saves: int = 0
    restores: int = 0
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    peak_occupancy: int = 0

    def save(self, slot: int, vector: StateVector) -> None:
        """Write ``vector`` into ``slot`` (allocating it if new)."""
        if slot not in self._slots and len(self._slots) >= self.capacity:
            raise CapacityError(
                f"state vector cache full: {self.capacity} flows is the "
                "architectural limit (Section 5.1)"
            )
        self._slots[slot] = vector
        self.saves += 1
        if len(self._slots) > self.peak_occupancy:
            self.peak_occupancy = len(self._slots)

    def restore(self, slot: int) -> StateVector:
        if slot not in self._slots:
            self.misses += 1
            raise CapacityError(f"no state vector in slot {slot}")
        self.restores += 1
        self.hits += 1
        return self._slots[slot]

    def invalidate(self, slot: int) -> None:
        """Drop a slot (flow deactivation); idempotent."""
        if self._slots.pop(slot, None) is not None:
            self.invalidations += 1

    def occupied(self) -> int:
        return len(self._slots)

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the tracer and ``PAPRunResult.extra``."""
        return {
            "capacity": self.capacity,
            "occupied": len(self._slots),
            "peak_occupancy": self.peak_occupancy,
            "saves": self.saves,
            "restores": self.restores,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "comparisons": self.comparisons,
        }

    def slots(self) -> tuple[int, ...]:
        return tuple(sorted(self._slots))

    # -- comparator -------------------------------------------------------

    def compare(self, slot_a: int, slot_b: int) -> bool:
        """One comparator invocation between two cached vectors."""
        self.comparisons += 1
        return self._slots[slot_a].equals(self._slots[slot_b])

    def is_zero(self, slot: int) -> bool:
        """Comparator against the zero mask (deactivation check)."""
        self.comparisons += 1
        return self._slots[slot].is_zero()

"""Bit-level STE column model.

Each STE is a 256-bit DRAM column one-hot encoding the symbols its state
matches (Section 2.1): to match symbol ``a`` the bit at row 97 is set.
Broadcasting the input symbol as the row address makes state match a
single row read.  :class:`SteColumn` models exactly that storage and the
row-read matching discipline; the functional executor reaches the same
answers through :class:`~repro.automata.charclass.CharClass` masks, and
the test suite asserts the two views agree bit-for-bit.
"""

from __future__ import annotations

from repro.automata.charclass import ALPHABET_SIZE, CharClass
from repro.errors import AutomatonError


class SteColumn:
    """One programmed STE column: 256 rows of one bit each."""

    __slots__ = ("rows",)

    def __init__(self) -> None:
        self.rows = bytearray(ALPHABET_SIZE)

    def program(self, label: CharClass) -> None:
        """Write the one-hot encoding of ``label`` into the column."""
        self.rows = bytearray(ALPHABET_SIZE)
        for symbol in label:
            self.rows[symbol] = 1

    def row_read(self, symbol: int) -> bool:
        """The state-match phase: read the row addressed by ``symbol``."""
        if not 0 <= symbol < ALPHABET_SIZE:
            raise AutomatonError(f"row address out of range: {symbol}")
        return bool(self.rows[symbol])

    def to_charclass(self) -> CharClass:
        """Recover the programmed label."""
        return CharClass(
            symbol for symbol in range(ALPHABET_SIZE) if self.rows[symbol]
        )

    def popcount(self) -> int:
        """Number of programmed rows (label cardinality)."""
        return sum(self.rows)


class SteArray:
    """A bank of STE columns with broadcast row reads.

    ``match_word(symbol)`` models the AP's parallel state-match phase:
    the symbol is broadcast to every column and the result is the set of
    matching columns (one DRAM row read across all arrays).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise AutomatonError("STE array capacity must be positive")
        self.capacity = capacity
        self.columns: list[SteColumn | None] = [None] * capacity

    def program_column(self, index: int, label: CharClass) -> None:
        if not 0 <= index < self.capacity:
            raise AutomatonError(f"STE index out of range: {index}")
        column = SteColumn()
        column.program(label)
        self.columns[index] = column

    def match_word(self, symbol: int) -> set[int]:
        """Indices of every programmed column whose row ``symbol`` is set."""
        return {
            index
            for index, column in enumerate(self.columns)
            if column is not None and column.row_read(symbol)
        }

    @property
    def programmed(self) -> int:
        return sum(1 for column in self.columns if column is not None)

"""Placing automata onto half-cores.

Because the routing matrix offers no transitions across half-cores,
every connected component must live entirely inside one half-core.
Placement therefore bin-packs components (first-fit decreasing); the
number of half-cores an FSM occupies determines how many replicas fit
on a board, and hence the number of input segments that can execute in
parallel (Table 1's last two columns):

    segments = floor(board half-cores / FSM half-cores)

Densely connected automata route poorly on real hardware and occupy
more half-cores than raw capacity suggests (the paper notes newer AP
compilers spread Levenshtein and EntityResolution over multiple dies).
``min_half_cores`` lets workload definitions pin the footprint the
paper reports; the packing still validates that components fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.ap.geometry import STES_PER_HALF_CORE, BoardGeometry
from repro.errors import PlacementError


@dataclass(frozen=True)
class Placement:
    """Result of placing one FSM.

    ``assignment[cid]`` is the half-core index of connected component
    ``cid``; ``loads[h]`` the number of STEs placed on half-core ``h``.
    """

    half_cores: int
    assignment: dict[int, int]
    loads: tuple[int, ...]

    @property
    def total_states(self) -> int:
        return sum(self.loads)

    def utilization(self, capacity: int = STES_PER_HALF_CORE) -> float:
        if not self.loads:
            return 0.0
        return self.total_states / (len(self.loads) * capacity)


def place_automaton(
    automaton: Automaton,
    *,
    capacity: int = STES_PER_HALF_CORE,
    min_half_cores: int = 1,
    analysis: AutomatonAnalysis | None = None,
) -> Placement:
    """First-fit-decreasing packing of connected components.

    Raises :class:`PlacementError` when a single component exceeds the
    half-core capacity (the hardware cannot split it).
    """
    if min_half_cores < 1:
        raise PlacementError("min_half_cores must be at least 1")
    analysis = analysis or AutomatonAnalysis(automaton)
    components = analysis.connected_components()

    sized = sorted(
        ((len(members), cid) for cid, members in enumerate(components)),
        reverse=True,
    )
    loads: list[int] = [0] * min_half_cores
    assignment: dict[int, int] = {}
    for size, cid in sized:
        if size > capacity:
            raise PlacementError(
                f"connected component {cid} of {automaton.name!r} has "
                f"{size} states, exceeding the {capacity}-STE half-core"
            )
        for index, load in enumerate(loads):
            if load + size <= capacity:
                loads[index] += size
                assignment[cid] = index
                break
        else:
            loads.append(size)
            assignment[cid] = len(loads) - 1
    return Placement(
        half_cores=len(loads), assignment=assignment, loads=tuple(loads)
    )


def segments_available(
    geometry: BoardGeometry, fsm_half_cores: int
) -> int:
    """Parallel input segments a board supports for one FSM footprint."""
    if fsm_half_cores < 1:
        raise PlacementError("an FSM occupies at least one half-core")
    return geometry.half_cores // fsm_half_cores

"""AP timing model.

All latencies are denominated in *symbol cycles* (7.5 ns each — the AP
deterministically processes one 8-bit symbol per cycle, Section 4.2).
The published constants modeled here:

* flow context switch: 3 cycles (save vector, fetch vector, load mask
  register and counters);
* final state-vector transfer to the host save buffer: 1,668 cycles;
* flow-invalidation vector (512-bit) transfer back to the AP: 15 cycles;
* one state-vector-cache comparison (convergence check): 1 cycle, fully
  overlappable with symbol processing.

The context-switch multiplier supports the paper's Section 5.3
sensitivity study (2x and 4x switch cost).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

SYMBOL_CYCLE_NS = 7.5


@dataclass(frozen=True)
class TimingModel:
    """Latency constants, in symbol cycles unless noted.

    ``decode_base_cycles`` and ``decode_cycles_per_flow`` model the host
    side of ``T_cpu`` (Section 3.4): interpreting a transferred state
    vector against the flow table costs a constant plus work per live
    flow, calibrated so typical benchmarks land near the paper's ~2,000
    total cycles (Figure 11).
    """

    symbol_cycle_ns: float = SYMBOL_CYCLE_NS
    context_switch_cycles: int = 3
    state_vector_transfer_cycles: int = 1_668
    fiv_transfer_cycles: int = 15
    convergence_check_cycles: int = 1
    convergence_checks_overlapped: bool = True
    decode_base_cycles: int = 50
    decode_cycles_per_flow: int = 4

    def __post_init__(self) -> None:
        if self.symbol_cycle_ns <= 0:
            raise ConfigurationError("symbol cycle time must be positive")
        if self.context_switch_cycles < 0:
            raise ConfigurationError("context switch cost cannot be negative")

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.symbol_cycle_ns

    def cycles_to_seconds(self, cycles: float) -> float:
        return self.cycles_to_ns(cycles) * 1e-9

    def with_context_switch_multiplier(self, factor: int) -> "TimingModel":
        """The Section 5.3 sensitivity knob (2x -> 6 cycles, 4x -> 12)."""
        if factor < 1:
            raise ConfigurationError("context switch multiplier must be >= 1")
        return replace(
            self, context_switch_cycles=self.context_switch_cycles * factor
        )

    def scaled_for_input(
        self, actual_bytes: int, modeled_bytes: int
    ) -> "TimingModel":
        """Shrink per-segment host/transfer costs for a scaled trace.

        Running a ``modeled_bytes`` experiment (the paper's 1 MB or
        10 MB) on an ``actual_bytes`` trace keeps every speedup ratio
        intact *iff* the fixed per-segment costs (state-vector readout,
        host decode, FIV transfer) shrink by the same factor — they are
        constants on hardware, so relative to shorter segments they
        would otherwise loom artificially large.  Per-symbol costs
        (context switch vs. TDM slice) are ratio-true already and stay
        untouched.
        """
        if actual_bytes <= 0 or modeled_bytes <= 0:
            raise ConfigurationError("byte counts must be positive")
        factor = actual_bytes / modeled_bytes
        if factor >= 1.0:
            return self
        return replace(
            self,
            state_vector_transfer_cycles=max(
                1, round(self.state_vector_transfer_cycles * factor)
            ),
            fiv_transfer_cycles=max(
                1, round(self.fiv_transfer_cycles * factor)
            ),
            decode_base_cycles=max(1, round(self.decode_base_cycles * factor)),
            decode_cycles_per_flow=max(
                1, round(self.decode_cycles_per_flow * factor)
            ),
        )


DEFAULT_TIMING = TimingModel()

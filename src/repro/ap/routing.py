"""Routing matrix model.

The AP's proprietary routing matrix implements state transitions as a
reconfigurable interconnect between STEs (Section 2.1).  Three
properties matter to this reproduction and are modeled here:

* transitions exist only *within* a half-core — the matrix offers no
  path between half-cores, which is why the half-core is the unit of
  input-segment parallelism;
* any number of programmed transitions can fire simultaneously in one
  cycle (what makes merged-flow execution free);
* reconfiguration requires a costly recompilation, so the PAP design
  never reprograms the matrix at runtime — flows reuse one programmed
  FSM.  The model counts recompilations so tests can assert none happen
  during parallel execution.
"""

from __future__ import annotations

from repro.errors import PlacementError


class RoutingMatrix:
    """The interconnect of one half-core."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._edges: set[tuple[int, int]] = set()
        self._compiled = False
        self.recompilations = 0

    def program(self, edges: set[tuple[int, int]] | frozenset[tuple[int, int]]) -> None:
        """Compile a transition set into the matrix.

        Programming after the initial compile models the expensive
        recompilation path and is counted.
        """
        for src, dst in edges:
            if not (0 <= src < self.capacity and 0 <= dst < self.capacity):
                raise PlacementError(
                    f"transition {src}->{dst} exceeds half-core STE range "
                    f"[0, {self.capacity})"
                )
        if self._compiled:
            self.recompilations += 1
        self._edges = set(edges)
        self._compiled = True

    @property
    def compiled(self) -> bool:
        return self._compiled

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def route(self, matched: set[int]) -> set[int]:
        """The state-transition phase: destinations of every matched
        state, all in one cycle."""
        return {dst for src, dst in self._edges if src in matched}

    def utilization(self) -> float:
        """Programmed edges relative to STE count (a routing-pressure
        proxy; the real matrix limit is place-and-route dependent)."""
        if self.capacity == 0:
            return 0.0
        return len(self._edges) / self.capacity

"""AP flows: time-multiplexed execution contexts.

Flows let independent input streams share one programmed FSM
(Section 3.2): each flow's dynamic state lives in a state-vector-cache
slot; switching flows costs 3 cycles because neither the memory arrays
nor the routing matrix are touched.  The PAP maps every enumeration
path (after merging) to one flow.

:class:`ApFlow` couples a :class:`~repro.automata.execution.FlowExecution`
to a cache slot and an output buffer, charging the timing model's
context-switch cost on save/restore — the mechanism the scheduler
drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.execution import FlowExecution
from repro.ap.events import OutputEventBuffer
from repro.ap.state_vector import StateVector, StateVectorCache
from repro.errors import ExecutionError


@dataclass
class ApFlow:
    """One flow: an execution context bound to a cache slot."""

    flow_id: int
    execution: FlowExecution
    cache: StateVectorCache
    buffer: OutputEventBuffer
    resident: bool = False
    deactivated: bool = False
    _drained_reports: int = field(default=0, repr=False)

    def save(self) -> None:
        """Context-switch out: write the state vector to the cache."""
        if self.deactivated:
            raise ExecutionError(f"flow {self.flow_id} is deactivated")
        self.cache.save(
            self.flow_id, StateVector(active=self.execution.state_vector())
        )
        self.resident = False

    def restore(self) -> None:
        """Context-switch in: fetch the vector and load the mask register."""
        if self.deactivated:
            raise ExecutionError(f"flow {self.flow_id} is deactivated")
        vector = self.cache.restore(self.flow_id)
        if vector.active != self.execution.state_vector():
            # The execution object *is* the truth; a mismatch means the
            # model desynchronized.
            raise ExecutionError(
                f"flow {self.flow_id}: cached vector diverged from execution"
            )
        self.resident = True

    def process(self, data: bytes, base_offset: int) -> None:
        """Run ``data`` through this flow, pushing reports to the buffer."""
        if self.deactivated:
            raise ExecutionError(f"flow {self.flow_id} is deactivated")
        before = len(self.execution.reports)
        self.execution.run(data, base_offset)
        new_reports = self.execution.reports[before:]
        self.buffer.push_all(new_reports, self.flow_id)

    def deactivate(self) -> None:
        """Invalidate this flow's cache slot and stop scheduling it."""
        self.cache.invalidate(self.flow_id)
        self.deactivated = True
        self.resident = False

    def is_unproductive(self) -> bool:
        """The deactivation predicate: the flow can never match again."""
        return self.execution.is_dead()

    def state_vector(self) -> StateVector:
        return StateVector(active=self.execution.state_vector())

"""Micron D480 Automata Processor geometry.

Constants follow Section 2.1 of the paper: a D480 device holds two
half-cores of 24,576 STEs each (49,152 per device), organized as 192
blocks x 256 rows x 16 STEs; a rank carries 8 devices, the evaluated
board 4 ranks.  Each device also provides 6 output regions of 1,024
reporting elements, 768 counters, 2,304 boolean elements, and a
state-vector cache of 512 entries; a state vector is 59,936 bits
((256 enable bits + 56 counter bits) x 192 blocks + 32 count bits).
"""

from __future__ import annotations

from dataclasses import dataclass

STES_PER_ROW = 16
ROWS_PER_BLOCK = 256
BLOCKS_PER_DEVICE = 192
HALF_CORES_PER_DEVICE = 2

STES_PER_BLOCK = STES_PER_ROW * ROWS_PER_BLOCK  # 4096
STES_PER_DEVICE = STES_PER_BLOCK * BLOCKS_PER_DEVICE // 32  # see note below

# The D480 exposes 49,152 STEs per device (2 half-cores x 24,576), i.e.
# 256 STE columns per block are addressable as state bits even though the
# row x STE grid is larger physically.  We pin the architectural numbers
# directly rather than deriving them:
STES_PER_HALF_CORE = 24_576
STES_PER_DEVICE = STES_PER_HALF_CORE * HALF_CORES_PER_DEVICE  # 49,152
BLOCKS_PER_HALF_CORE = BLOCKS_PER_DEVICE // HALF_CORES_PER_DEVICE  # 96

DEVICES_PER_RANK = 8
RANKS_PER_BOARD = 4
HALF_CORES_PER_RANK = DEVICES_PER_RANK * HALF_CORES_PER_DEVICE  # 16
HALF_CORES_PER_BOARD = HALF_CORES_PER_RANK * RANKS_PER_BOARD  # 64

OUTPUT_REGIONS_PER_DEVICE = 6
REPORTING_ELEMENTS_PER_REGION = 1_024
COUNTERS_PER_DEVICE = 768
BOOLEAN_ELEMENTS_PER_DEVICE = 2_304

STATE_VECTOR_CACHE_ENTRIES = 512

ENABLE_BITS_PER_BLOCK = 256
COUNTER_BITS_PER_BLOCK = 56
STATE_VECTOR_TAIL_BITS = 32
STATE_VECTOR_BITS = (
    (ENABLE_BITS_PER_BLOCK + COUNTER_BITS_PER_BLOCK) * BLOCKS_PER_DEVICE
    + STATE_VECTOR_TAIL_BITS
)  # 59,936


@dataclass(frozen=True)
class BoardGeometry:
    """A configurable AP board; defaults model the evaluated D480 board."""

    ranks: int = RANKS_PER_BOARD
    devices_per_rank: int = DEVICES_PER_RANK
    half_cores_per_device: int = HALF_CORES_PER_DEVICE
    stes_per_half_core: int = STES_PER_HALF_CORE
    state_vector_cache_entries: int = STATE_VECTOR_CACHE_ENTRIES

    @property
    def devices(self) -> int:
        return self.ranks * self.devices_per_rank

    @property
    def half_cores(self) -> int:
        return self.devices * self.half_cores_per_device

    @property
    def half_cores_per_rank(self) -> int:
        return self.devices_per_rank * self.half_cores_per_device

    @property
    def stes(self) -> int:
        return self.half_cores * self.stes_per_half_core

    def with_ranks(self, ranks: int) -> "BoardGeometry":
        """The same board restricted/extended to ``ranks`` ranks."""
        return BoardGeometry(
            ranks=ranks,
            devices_per_rank=self.devices_per_rank,
            half_cores_per_device=self.half_cores_per_device,
            stes_per_half_core=self.stes_per_half_core,
            state_vector_cache_entries=self.state_vector_cache_entries,
        )


ONE_RANK = BoardGeometry(ranks=1)
FOUR_RANKS = BoardGeometry(ranks=4)


def state_vector_bits() -> int:
    """Size of one state vector in bits (59,936 on the D480)."""
    return STATE_VECTOR_BITS

"""Entry points of the ``apcheck`` pass: :func:`run_lint` and the gate.

``run_lint`` executes every registered rule (optionally restricted to
families) over one automaton and returns a :class:`LintReport`.
``lint_gate`` is the opt-out pre-deployment check wired into
:class:`repro.core.pap.ParallelAutomataProcessor` and
:func:`repro.core.deployment.deploy_plan`: it raises
:class:`~repro.errors.LintError` when error-level diagnostics are
present, so malformed automata fail at load time instead of deep inside
execution.
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import (
    FAMILY_STRUCTURAL,
    REGISTRY,
    DEFAULT_LINT_CONFIG,
    LintConfig,
    LintContext,
    rules_for,
)

# Importing the rule modules populates the registry.
from repro.lint import structural as _structural  # noqa: F401
from repro.lint import parallel as _parallel  # noqa: F401
from repro.lint import capacity as _capacity  # noqa: F401
from repro.lint import predictive as _predictive  # noqa: F401


def run_lint(
    automaton: Automaton,
    *,
    config: LintConfig | None = None,
    analysis: AutomatonAnalysis | None = None,
    families: Iterable[str] | None = None,
) -> LintReport:
    """Run the static-analysis pass over ``automaton``.

    Parameters
    ----------
    config:
        Thresholds and the target board; defaults model the evaluated
        4-rank D480 board.
    analysis:
        A pre-built analysis to reuse.  A *stale* analysis (its
        automaton mutated since construction) short-circuits the pass
        into a single ``AP009`` error — no other rule can answer its
        queries against a moved-underneath automaton.
    families:
        Restrict to rule families (``structural``, ``parallel``,
        ``capacity``, ``predictive``); ``None`` runs everything.
    """
    config = config or DEFAULT_LINT_CONFIG
    if analysis is not None and not analysis.is_fresh():
        stale = REGISTRY["AP009"]
        return LintReport(
            automaton=automaton.name,
            diagnostics=(
                Diagnostic(
                    code=stale.code,
                    rule=stale.name,
                    severity=stale.default_severity,
                    message=(
                        "analysis is stale: the automaton mutated after "
                        "the AutomatonAnalysis was constructed; rebuild "
                        "it before linting"
                    ),
                    automaton=automaton.name,
                ),
            ),
        )
    analysis = analysis or AutomatonAnalysis(automaton)
    context = LintContext(automaton, analysis, config)
    diagnostics: list[Diagnostic] = []
    for registered in rules_for(families):
        diagnostics.extend(registered.check(context))
    return LintReport(
        automaton=automaton.name, diagnostics=tuple(diagnostics)
    )


def lint_gate(
    automaton: Automaton,
    *,
    config: LintConfig | None = None,
    analysis: AutomatonAnalysis | None = None,
    families: Iterable[str] = (FAMILY_STRUCTURAL,),
) -> LintReport:
    """Refuse error-level diagnostics before deployment.

    Runs the structural family by default (capacity violations surface
    as precise :class:`~repro.errors.PlacementError` /
    :class:`~repro.errors.CapacityError` at placement time; the CLI
    lints them earlier and advisorily).  Returns the report on success
    so callers can log warnings; raises :class:`LintError` otherwise.
    """
    report = run_lint(
        automaton, config=config, analysis=analysis, families=families
    )
    if report.has_errors:
        errors = report.at_least(Severity.ERROR)
        summary = "; ".join(
            f"{d.code} {d.message}" for d in list(errors)[:3]
        )
        if len(errors) > 3:
            summary += f"; ... (+{len(errors) - 3} more)"
        raise LintError(
            f"automaton {automaton.name!r} failed the pre-deployment "
            f"lint gate with {len(errors)} error(s): {summary}",
            report=report,
        )
    return report

"""Capacity rules (``AP201``–``AP208``): D480 hardware budgets.

Checks the automaton against the board model of
:mod:`repro.ap.geometry` and :mod:`repro.ap.placement`: components must
fit a half-core (the routing matrix has no inter-half-core paths), the
replica must fit the board, reporting states must fit the output
regions, and counter/boolean budgets must hold.  Routing feasibility is
a proxy — the real limit is place-and-route dependent — so edge
pressure is a warning, never an error.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.ap.geometry import (
    BOOLEAN_ELEMENTS_PER_DEVICE,
    COUNTERS_PER_DEVICE,
)
from repro.ap.placement import segments_available
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import FAMILY_CAPACITY, LintContext, rule


def _devices_spanned(ctx: LintContext, half_cores: int) -> int:
    per_device = ctx.config.geometry.half_cores_per_device
    return max(1, math.ceil(half_cores / per_device))


@rule(
    "AP201",
    "component-exceeds-half-core",
    FAMILY_CAPACITY,
    Severity.ERROR,
    "a connected component is larger than one half-core",
)
def _component_too_big(ctx: LintContext) -> Iterator[Diagnostic]:
    capacity = ctx.config.geometry.stes_per_half_core
    for cid, members in enumerate(ctx.analysis.connected_components()):
        if len(members) > capacity:
            yield ctx.emit(
                "AP201",
                f"connected component {cid} has {len(members)} states, "
                f"exceeding the {capacity}-STE half-core; the routing "
                "matrix cannot split a component across half-cores",
                states=sorted(members)[:16],
                data={"component": cid, "size": len(members)},
            )


@rule(
    "AP202",
    "board-overflow",
    FAMILY_CAPACITY,
    Severity.ERROR,
    "one FSM replica does not fit the configured board",
)
def _board_overflow(ctx: LintContext) -> Iterator[Diagnostic]:
    placement = ctx.placement()
    if placement is None:
        return  # AP201 reported the root cause.
    board = ctx.config.geometry.half_cores
    if placement.half_cores > board:
        yield ctx.emit(
            "AP202",
            f"placement needs {placement.half_cores} half-cores; the "
            f"configured board has {board}",
            data={"needed": placement.half_cores, "available": board},
        )


@rule(
    "AP203",
    "no-parallel-segments",
    FAMILY_CAPACITY,
    Severity.WARNING,
    "the board fits only one replica: no input-segment parallelism",
)
def _no_parallelism(ctx: LintContext) -> Iterator[Diagnostic]:
    placement = ctx.placement()
    if placement is None:
        return
    board = ctx.config.geometry.half_cores
    if placement.half_cores > board:
        return  # AP202 covers the outright overflow.
    segments = segments_available(
        ctx.config.geometry, placement.half_cores
    )
    if segments < 2:
        yield ctx.emit(
            "AP203",
            f"the FSM occupies {placement.half_cores} of {board} "
            "half-cores; only one replica fits, so PAP degenerates to "
            "the sequential golden run",
            data={"fsm_half_cores": placement.half_cores},
        )


@rule(
    "AP204",
    "output-region-overflow",
    FAMILY_CAPACITY,
    Severity.ERROR,
    "more reporting states than output-region elements on the replica",
)
def _output_overflow(ctx: LintContext) -> Iterator[Diagnostic]:
    placement = ctx.placement()
    if placement is None:
        return
    reporting = len(ctx.automaton.reporting_states())
    devices = _devices_spanned(ctx, placement.half_cores)
    budget = devices * ctx.config.reporting_elements_per_device
    if reporting > budget:
        yield ctx.emit(
            "AP204",
            f"{reporting} reporting states exceed the {budget} "
            f"reporting elements of the {devices} device(s) the "
            f"replica spans "
            f"({ctx.config.reporting_elements_per_device} per device)",
            data={"reporting": reporting, "budget": budget},
        )


@rule(
    "AP205",
    "counter-budget",
    FAMILY_CAPACITY,
    Severity.ERROR,
    "requested counter elements exceed the per-device budget",
)
def _counter_budget(ctx: LintContext) -> Iterator[Diagnostic]:
    if not ctx.config.counters_used:
        return
    placement = ctx.placement()
    devices = _devices_spanned(
        ctx, placement.half_cores if placement else 1
    )
    budget = devices * COUNTERS_PER_DEVICE
    if ctx.config.counters_used > budget:
        yield ctx.emit(
            "AP205",
            f"deployment requests {ctx.config.counters_used} counters; "
            f"the replica's {devices} device(s) provide {budget} "
            f"({COUNTERS_PER_DEVICE} per device)",
            data={"requested": ctx.config.counters_used, "budget": budget},
        )


@rule(
    "AP206",
    "boolean-budget",
    FAMILY_CAPACITY,
    Severity.ERROR,
    "requested boolean elements exceed the per-device budget",
)
def _boolean_budget(ctx: LintContext) -> Iterator[Diagnostic]:
    if not ctx.config.booleans_used:
        return
    placement = ctx.placement()
    devices = _devices_spanned(
        ctx, placement.half_cores if placement else 1
    )
    budget = devices * BOOLEAN_ELEMENTS_PER_DEVICE
    if ctx.config.booleans_used > budget:
        yield ctx.emit(
            "AP206",
            f"deployment requests {ctx.config.booleans_used} boolean "
            f"elements; the replica's {devices} device(s) provide "
            f"{budget} ({BOOLEAN_ELEMENTS_PER_DEVICE} per device)",
            data={"requested": ctx.config.booleans_used, "budget": budget},
        )


@rule(
    "AP207",
    "routing-pressure",
    FAMILY_CAPACITY,
    Severity.WARNING,
    "programmed edges on one half-core exceed the routing proxy limit",
)
def _routing_pressure(ctx: LintContext) -> Iterator[Diagnostic]:
    placement = ctx.placement()
    if placement is None:
        return
    component_of = ctx.analysis.component_index()
    edges_per_half_core = [0] * placement.half_cores
    for src, dst in ctx.automaton.edges():
        cid = component_of[src]
        edges_per_half_core[placement.assignment[cid]] += 1
    limit = int(
        ctx.config.geometry.stes_per_half_core
        * ctx.config.routing_edge_factor
    )
    for index, edges in enumerate(edges_per_half_core):
        if edges > limit:
            members = [
                cid
                for cid in placement.assignment
                if placement.assignment[cid] == index
            ]
            yield ctx.emit(
                "AP207",
                f"half-core {index} carries {edges} transitions for "
                f"{len(members)} component(s), above the routing "
                f"pressure proxy of {limit}; expect place-and-route "
                "to spread this FSM over more half-cores",
                data={"half_core": index, "edges": edges, "limit": limit},
            )


@rule(
    "AP208",
    "placement-fragmentation",
    FAMILY_CAPACITY,
    Severity.INFO,
    "multi-half-core placement with very low STE utilization",
)
def _fragmentation(ctx: LintContext) -> Iterator[Diagnostic]:
    placement = ctx.placement()
    if placement is None or placement.half_cores < 2:
        return
    utilization = placement.utilization(
        ctx.config.geometry.stes_per_half_core
    )
    if utilization < ctx.config.min_utilization:
        yield ctx.emit(
            "AP208",
            f"placement spreads {placement.total_states} states over "
            f"{placement.half_cores} half-cores at "
            f"{utilization:.1%} utilization; fewer, fuller half-cores "
            "would admit more parallel segments",
            data={"utilization": utilization},
        )

"""Rule registry and shared context of the lint pass.

Rules are plain generator functions registered under a stable code with
the :func:`rule` decorator::

    @rule("AP004", "unreachable-state", FAMILY_STRUCTURAL, Severity.WARNING,
          "states not reachable from any start state")
    def _unreachable(ctx: LintContext) -> Iterator[Diagnostic]:
        ...
        yield ctx.emit("AP004", "...", states=(...))

The registry keeps rules in code order, which makes report ordering
deterministic and lets renderers group by family.  Codes are permanent:
a retired rule's code is never reassigned.

:class:`LintContext` carries the automaton, its
:class:`~repro.automata.analysis.AutomatonAnalysis`, the
:class:`LintConfig` thresholds, and lazily computed shared artifacts
(placement, per-symbol enumeration ranges) so independent rules do not
recompute them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.ap.geometry import (
    OUTPUT_REGIONS_PER_DEVICE,
    REPORTING_ELEMENTS_PER_REGION,
    STATE_VECTOR_CACHE_ENTRIES,
    BoardGeometry,
)
from repro.ap.placement import Placement, place_automaton
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.core.enumeration import EnumerationUnit, build_units
from repro.core.ranges import enumeration_range
from repro.errors import ConfigurationError, PlacementError
from repro.lint.diagnostics import Diagnostic, Severity

FAMILY_STRUCTURAL = "structural"
FAMILY_PARALLEL = "parallel"
FAMILY_CAPACITY = "capacity"
FAMILY_PREDICTIVE = "predictive"
FAMILIES = (
    FAMILY_STRUCTURAL,
    FAMILY_PARALLEL,
    FAMILY_CAPACITY,
    FAMILY_PREDICTIVE,
)


@dataclass(frozen=True)
class LintConfig:
    """Thresholds and modeled resources of one lint pass.

    Attributes
    ----------
    geometry:
        The target AP board; capacity rules check against it.
    max_flows:
        State-vector-cache entries per device — the hard bound on
        simultaneously live flows of one segment.
    max_enumeration_range:
        Blowup threshold: when even the best partition symbol's
        enumeration range exceeds this, segment start-state enumeration
        cannot be tamed (``AP101``).
    asg_max_depth:
        Bootstrap depth treated as always-active (Section 3.3.2);
        depth 0 is exact at every segment offset.
    counters_used / booleans_used:
        Counter and boolean elements the deployment intends to program,
        checked against the per-device budgets (``AP205``/``AP206``).
    reporting_elements_per_device:
        Output-region capacity per device (6 regions x 1,024 elements
        on the D480), the ``AP204`` budget.
    routing_edge_factor:
        Routing-pressure proxy: warn when a half-core's programmed
        edges exceed ``factor * STE capacity`` (``AP207``).
    min_utilization:
        Placement-fragmentation floor for the ``AP208`` note.
    """

    geometry: BoardGeometry = field(default_factory=BoardGeometry)
    max_flows: int = STATE_VECTOR_CACHE_ENTRIES
    max_enumeration_range: int = STATE_VECTOR_CACHE_ENTRIES
    asg_max_depth: int = 0
    counters_used: int = 0
    booleans_used: int = 0
    reporting_elements_per_device: int = (
        OUTPUT_REGIONS_PER_DEVICE * REPORTING_ELEMENTS_PER_REGION
    )
    routing_edge_factor: float = 1.0
    min_utilization: float = 0.05

    def __post_init__(self) -> None:
        if self.max_flows < 1:
            raise ConfigurationError("max_flows must be >= 1")
        if self.max_enumeration_range < 1:
            raise ConfigurationError("max_enumeration_range must be >= 1")
        if self.asg_max_depth < 0:
            raise ConfigurationError("asg_max_depth must be >= 0")
        if self.counters_used < 0 or self.booleans_used < 0:
            raise ConfigurationError("element budgets must be >= 0")


DEFAULT_LINT_CONFIG = LintConfig()


class LintContext:
    """Shared state handed to every rule of one lint pass."""

    def __init__(
        self,
        automaton: Automaton,
        analysis: AutomatonAnalysis,
        config: LintConfig,
    ) -> None:
        self.automaton = automaton
        self.analysis = analysis
        self.config = config
        self._placement: Placement | None = None
        self._placement_error: PlacementError | None = None
        self._placement_done = False
        self._enum_range_sizes: tuple[int, ...] | None = None
        self._path_independent: frozenset[int] | None = None
        self._best_symbol_units: list[EnumerationUnit] | None = None

    # -- shared derived artifacts ------------------------------------------

    @property
    def path_independent(self) -> frozenset[int]:
        """States the ASG flow covers for free (Section 3.3.2)."""
        if self._path_independent is None:
            self._path_independent = self.analysis.path_independent_states(
                self.config.asg_max_depth
            )
        return self._path_independent

    def placement(self) -> Placement | None:
        """First-fit-decreasing placement, or ``None`` when impossible
        (an over-capacity component; ``AP201`` reports the cause)."""
        if not self._placement_done:
            self._placement_done = True
            try:
                self._placement = place_automaton(
                    self.automaton,
                    capacity=self.config.geometry.stes_per_half_core,
                    analysis=self.analysis,
                )
            except PlacementError as exc:
                self._placement_error = exc
        return self._placement

    def enumeration_range_sizes(self) -> tuple[int, ...]:
        """Per-symbol enumeration-range sizes with the always-active
        group excluded — the quantity segment planning minimizes."""
        if self._enum_range_sizes is None:
            exclude = self.path_independent
            self._enum_range_sizes = tuple(
                len(
                    enumeration_range(
                        self.analysis, symbol, exclude=exclude
                    )
                )
                for symbol in range(256)
            )
        return self._enum_range_sizes

    def best_partition_symbol(self) -> tuple[int, int]:
        """``(symbol, range_size)`` of the smallest enumeration range."""
        sizes = self.enumeration_range_sizes()
        symbol = min(range(256), key=lambda s: sizes[s])
        return symbol, sizes[symbol]

    def best_symbol_units(self) -> list[EnumerationUnit]:
        """Enumeration units (common-parent grouping, Section 3.3.2)
        for the best partition symbol."""
        if self._best_symbol_units is None:
            symbol, _ = self.best_partition_symbol()
            range_states = enumeration_range(
                self.analysis, symbol, exclude=self.path_independent
            )
            self._best_symbol_units = build_units(
                self.analysis, range_states
            )
        return self._best_symbol_units

    # -- diagnostic construction -------------------------------------------

    def emit(
        self,
        code: str,
        message: str,
        *,
        states: Iterable[int] = (),
        severity: Severity | None = None,
        data: dict[str, Any] | None = None,
    ) -> Diagnostic:
        registered = REGISTRY[code]
        return Diagnostic(
            code=code,
            rule=registered.name,
            severity=severity or registered.default_severity,
            message=message,
            automaton=self.automaton.name,
            states=tuple(sorted(states)),
            data=data or {},
        )


RuleCheck = Callable[[LintContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """One registered rule: identity, family, severity, and its check."""

    code: str
    name: str
    family: str
    default_severity: Severity
    summary: str
    check: RuleCheck


REGISTRY: dict[str, LintRule] = {}


def rule(
    code: str,
    name: str,
    family: str,
    severity: Severity,
    summary: str,
) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule under a stable diagnostic code."""
    if family not in FAMILIES:
        raise ValueError(f"unknown rule family {family!r}")

    def decorate(check: RuleCheck) -> RuleCheck:
        if code in REGISTRY:
            raise ValueError(f"diagnostic code {code} registered twice")
        REGISTRY[code] = LintRule(
            code=code,
            name=name,
            family=family,
            default_severity=severity,
            summary=summary,
            check=check,
        )
        return check

    return decorate


def rules_for(families: Iterable[str] | None = None) -> tuple[LintRule, ...]:
    """Registered rules of the given families, in code order."""
    if families is None:
        wanted = set(FAMILIES)
    else:
        wanted = set(families)
        unknown = wanted - set(FAMILIES)
        if unknown:
            raise ConfigurationError(
                f"unknown rule families: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(FAMILIES)}"
            )
    return tuple(
        REGISTRY[code]
        for code in sorted(REGISTRY)
        if REGISTRY[code].family in wanted
    )

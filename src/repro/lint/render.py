"""Text and JSON renderers for lint reports.

The text form is one gcc-style line per diagnostic::

    SPM: error AP201 [component-exceeds-half-core] connected component ...
      states: 3, 4, 5, ... (+12 more)

followed by a per-automaton summary line.  The JSON form is a stable
machine-readable document (one object per automaton) for CI gates and
external tooling.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.lint.diagnostics import Diagnostic, LintReport, Severity

_MAX_STATES_SHOWN = 8


def _as_reports(
    reports: LintReport | Iterable[LintReport],
) -> list[LintReport]:
    if isinstance(reports, LintReport):
        return [reports]
    return list(reports)


def severity_gate(
    reports: LintReport | Iterable[LintReport], fail_on: str
) -> bool:
    """The shared ``--fail-on`` policy of ``repro lint``/``repro analyze``.

    True when any report carries a diagnostic at or above the
    ``fail_on`` severity; the literal ``"never"`` disables the gate.
    Other values must parse as a :class:`Severity`
    (:class:`~repro.errors.ConfigurationError` otherwise) — both CLIs
    and the CI jobs call this one function so their exit semantics
    cannot drift apart.
    """
    if fail_on == "never":
        return False
    threshold = Severity.parse(fail_on)
    return any(
        len(report.at_least(threshold)) for report in _as_reports(reports)
    )


def format_diagnostic(diagnostic: Diagnostic) -> str:
    """One diagnostic as text line(s)."""
    name = diagnostic.automaton or "<automaton>"
    line = (
        f"{name}: {diagnostic.severity.value} {diagnostic.code} "
        f"[{diagnostic.rule}] {diagnostic.message}"
    )
    if diagnostic.states:
        shown = ", ".join(
            str(sid) for sid in diagnostic.states[:_MAX_STATES_SHOWN]
        )
        extra = len(diagnostic.states) - _MAX_STATES_SHOWN
        if extra > 0:
            shown += f", ... (+{extra} more)"
        line += f"\n  states: {shown}"
    return line


def render_text(
    reports: LintReport | Iterable[LintReport],
    *,
    min_severity: Severity = Severity.INFO,
) -> str:
    """Render one or many reports as human-readable text."""
    blocks: list[str] = []
    for report in _as_reports(reports):
        visible = report.at_least(min_severity)
        lines = [format_diagnostic(d) for d in visible]
        summary = (
            f"{report.automaton}: {report.num_errors} error(s), "
            f"{report.num_warnings} warning(s), "
            f"{report.num_infos} note(s)"
        )
        lines.append(summary)
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_json(
    reports: LintReport | Iterable[LintReport],
    *,
    min_severity: Severity = Severity.INFO,
    indent: int | None = 2,
) -> str:
    """Render one or many reports as a JSON document."""
    payload = {
        "reports": [
            report.at_least(min_severity).to_dict()
            for report in _as_reports(reports)
        ]
    }
    return json.dumps(payload, indent=indent, sort_keys=False)

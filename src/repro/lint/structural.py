"""Structural rules (``AP001``–``AP009``): automaton well-formedness.

These rules catch the malformed-input class: automata that execute
wrongly (no start states, empty labels, dangling edges), waste capacity
(unreachable or dead states), or violate hardware conventions the
functional model tolerates (reporting states with successors).  The
pre-deployment gate (:func:`repro.lint.lint_gate`) refuses error-level
findings from this family.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import FAMILY_STRUCTURAL, LintContext, rule

_SAMPLE = 8


@rule(
    "AP001",
    "no-start-states",
    FAMILY_STRUCTURAL,
    Severity.ERROR,
    "a non-empty automaton has no start state of either kind",
)
def _no_start_states(ctx: LintContext) -> Iterator[Diagnostic]:
    if len(ctx.automaton) and not ctx.automaton.start_states():
        yield ctx.emit(
            "AP001",
            "no start states: no state can ever become enabled",
        )


@rule(
    "AP002",
    "empty-label",
    FAMILY_STRUCTURAL,
    Severity.ERROR,
    "states whose character class matches no symbol",
)
def _empty_labels(ctx: LintContext) -> Iterator[Diagnostic]:
    empty = [ste.sid for ste in ctx.automaton.states() if not ste.label]
    if empty:
        yield ctx.emit(
            "AP002",
            f"{len(empty)} state(s) have empty labels and can never match",
            states=empty,
        )


@rule(
    "AP003",
    "dangling-edge",
    FAMILY_STRUCTURAL,
    Severity.ERROR,
    "edges whose destination is not a valid state id",
)
def _dangling_edges(ctx: LintContext) -> Iterator[Diagnostic]:
    # The Automaton API prevents this, but deserialized or hand-built
    # structures may smuggle bad ids in; guard like Automaton.validate.
    count = len(ctx.automaton)
    bad = [
        (src, dst)
        for src, dst in ctx.automaton.edges()
        if not 0 <= dst < count
    ]
    if bad:
        shown = ", ".join(f"{s}->{d}" for s, d in bad[:_SAMPLE])
        yield ctx.emit(
            "AP003",
            f"{len(bad)} dangling edge(s): {shown}",
            states=[src for src, _ in bad],
        )


@rule(
    "AP004",
    "unreachable-state",
    FAMILY_STRUCTURAL,
    Severity.WARNING,
    "states not reachable from any start state",
)
def _unreachable(ctx: LintContext) -> Iterator[Diagnostic]:
    all_states = frozenset(range(len(ctx.automaton)))
    unreachable = all_states - ctx.analysis.reachable_states()
    if unreachable:
        yield ctx.emit(
            "AP004",
            f"{len(unreachable)} state(s) unreachable from any start "
            "state occupy STEs but never match",
            states=unreachable,
        )


@rule(
    "AP005",
    "dead-state",
    FAMILY_STRUCTURAL,
    Severity.WARNING,
    "reachable states from which no reporting state is reachable",
)
def _dead(ctx: LintContext) -> Iterator[Diagnostic]:
    dead = ctx.analysis.dead_states()
    if dead:
        yield ctx.emit(
            "AP005",
            f"{len(dead)} reachable state(s) can never lead to a report",
            states=dead,
        )


@rule(
    "AP006",
    "reporting-successors",
    FAMILY_STRUCTURAL,
    Severity.WARNING,
    "reporting states with outgoing edges (AP output regions forbid them)",
)
def _reporting_successors(ctx: LintContext) -> Iterator[Diagnostic]:
    offenders = [
        sid
        for sid in ctx.automaton.reporting_states()
        if ctx.automaton.successors(sid)
    ]
    if offenders:
        yield ctx.emit(
            "AP006",
            f"{len(offenders)} reporting state(s) have outgoing edges; "
            "AP output regions terminate chains, so hardware placement "
            "must duplicate them",
            states=offenders,
        )


@rule(
    "AP007",
    "duplicate-report-code",
    FAMILY_STRUCTURAL,
    Severity.INFO,
    "distinct reporting states sharing report codes",
)
def _duplicate_report_codes(ctx: LintContext) -> Iterator[Diagnostic]:
    by_code: dict[int, list[int]] = {}
    for sid in ctx.automaton.reporting_states():
        by_code.setdefault(ctx.automaton.state(sid).code, []).append(sid)
    shared = {
        code_value: members
        for code_value, members in by_code.items()
        if len(members) > 1
    }
    if shared:
        affected = sorted(
            sid for members in shared.values() for sid in members
        )
        yield ctx.emit(
            "AP007",
            f"{len(shared)} report code(s) are shared by multiple "
            f"reporting states ({len(affected)} states total); host "
            "decode resolves matches to rule granularity only "
            "(intentional for multi-state rules)",
            states=affected,
            data={"shared_codes": sorted(shared)[:32]},
        )


@rule(
    "AP008",
    "no-reporting-states",
    FAMILY_STRUCTURAL,
    Severity.INFO,
    "automaton produces no reports (legal pure filter)",
)
def _no_reporting(ctx: LintContext) -> Iterator[Diagnostic]:
    if len(ctx.automaton) and not ctx.automaton.reporting_states():
        yield ctx.emit(
            "AP008",
            "no reporting states: execution can never produce output "
            "(legal for pure filters, usually a mistake otherwise)",
        )


@rule(
    "AP009",
    "stale-analysis",
    FAMILY_STRUCTURAL,
    Severity.ERROR,
    "the supplied AutomatonAnalysis predates an automaton mutation",
)
def _stale_analysis(ctx: LintContext) -> Iterator[Diagnostic]:
    # run_lint short-circuits on staleness before rules execute (a stale
    # analysis cannot answer any query), so this only documents the code
    # and fires defensively if the automaton mutates mid-pass.
    if not ctx.analysis.is_fresh():
        yield ctx.emit(
            "AP009",
            "analysis is stale: the automaton mutated after the "
            "AutomatonAnalysis was constructed; rebuild it",
        )

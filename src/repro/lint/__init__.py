"""repro.lint — the ``apcheck`` static-analysis pass.

Pre-execution diagnostics for homogeneous automata and their AP
deployments, in four rule families:

* **structural** (``AP001``–``AP009``) — well-formedness: start/report
  sanity, empty labels, dangling edges, unreachable and dead states,
  stale-analysis misuse;
* **parallel** (``AP101``–``AP105``) — parallelization risk: symbol
  range blowup, enumeration-unit estimates, flow/state-vector-cache
  pressure, always-active coverage (the paper's Section 3 properties);
* **capacity** (``AP201``–``AP208``) — D480 budgets: half-core and
  board STE capacity, output regions, counters/booleans, routing
  pressure;
* **predictive** (``AP301``+) — :mod:`repro.analyze`-backed judgement:
  divergence-surviving enumeration flows that cap predicted speedup
  (``AP301``) or cross the enumeration-vs-single-FSM line (``AP302``).

Use :func:`run_lint` for a full report, :func:`lint_gate` as the
raising pre-deployment check, and the renderers for output::

    from repro.lint import run_lint, render_text

    report = run_lint(automaton)
    if report.has_errors:
        print(render_text(report))
"""

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import (
    FAMILIES,
    FAMILY_CAPACITY,
    FAMILY_PARALLEL,
    FAMILY_PREDICTIVE,
    FAMILY_STRUCTURAL,
    REGISTRY,
    DEFAULT_LINT_CONFIG,
    LintConfig,
    LintContext,
    LintRule,
    rule,
    rules_for,
)
from repro.lint.render import (
    format_diagnostic,
    render_json,
    render_text,
    severity_gate,
)
from repro.lint.runner import lint_gate, run_lint
from repro.lint.sarif import render_sarif, sarif_run, severity_to_level

__all__ = [
    "DEFAULT_LINT_CONFIG",
    "Diagnostic",
    "FAMILIES",
    "FAMILY_CAPACITY",
    "FAMILY_PARALLEL",
    "FAMILY_PREDICTIVE",
    "FAMILY_STRUCTURAL",
    "LintConfig",
    "LintContext",
    "LintReport",
    "LintRule",
    "REGISTRY",
    "Severity",
    "format_diagnostic",
    "lint_gate",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "rules_for",
    "run_lint",
    "sarif_run",
    "severity_gate",
    "severity_to_level",
]

"""Predictive rules (AP301+): analysis-backed parallelizability checks.

These rules consume the :mod:`repro.analyze` fact pass instead of the
structural queries the other families use.  Lint runs without input
data, so the divergence pass uses the uniform trace profile — every
label hit probability degrades to ``|label| / 256`` — which makes these
*conservative* judgements: a flow the uniform abstraction can kill dies
under any input distribution that is not adversarially matched to the
automaton, while an unresolved flow here may still die quickly on real
traffic (run ``repro analyze`` with a trace for the sharp version).
"""

from __future__ import annotations

from typing import Iterator

from repro.analyze.facts import (
    BoundaryFacts,
    boundary_facts,
    label_hit_probabilities,
    uniform_profile,
)
from repro.ap.placement import segments_available
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import FAMILY_PREDICTIVE, LintContext, rule

#: Predicted-speedup floor below which parallelization is flagged.
MIN_PREDICTED_SPEEDUP = 2.0

_FACTS_ATTR = "_predictive_boundary_facts"


def _uniform_boundary(ctx: LintContext) -> BoundaryFacts:
    """Boundary facts for the best partition symbol under the uniform
    profile, computed once per lint pass (both rules share them)."""
    cached = getattr(ctx, _FACTS_ATTR, None)
    if cached is None:
        profile = uniform_profile()
        hit = label_hit_probabilities(ctx.automaton, profile)
        successors = tuple(
            ctx.automaton.successors(sid)
            for sid in range(len(ctx.automaton))
        )
        symbol, _ = ctx.best_partition_symbol()
        cached = boundary_facts(
            ctx.automaton,
            ctx.analysis,
            symbol,
            False,
            ctx.path_independent,
            hit,
            profile,
            successors,
        )
        setattr(ctx, _FACTS_ATTR, cached)
    return cached


def _segments(ctx: LintContext) -> int:
    placement = ctx.placement()
    if placement is None:
        return 0
    return segments_available(ctx.config.geometry, placement.half_cores)


@rule(
    "AP301",
    "predicted-enumeration-blowup",
    FAMILY_PREDICTIVE,
    Severity.WARNING,
    "divergence analysis predicts surviving enumeration flows that cap "
    "parallel speedup below the payoff threshold",
)
def _predicted_blowup(ctx: LintContext) -> Iterator[Diagnostic]:
    segments = _segments(ctx)
    if segments < 2:
        return
    bound = _uniform_boundary(ctx)
    survivors = bound.static_survivors
    # Crossover (AP302) subsumes this finding; keep the two disjoint.
    if survivors == 0 or survivors + 1 >= segments:
        return
    predicted = segments / (1 + survivors)
    if predicted >= MIN_PREDICTED_SPEEDUP:
        return
    yield ctx.emit(
        "AP301",
        f"{survivors} of {bound.flow_count} enumeration flows survive "
        f"the divergence pass, capping predicted speedup at "
        f"{predicted:.2f}x across {segments} segments (threshold "
        f"{MIN_PREDICTED_SPEEDUP:.1f}x)",
        data={
            "segments": segments,
            "flows": bound.flow_count,
            "surviving_flows": survivors,
            "predicted_speedup": round(predicted, 4),
            "threshold": MIN_PREDICTED_SPEEDUP,
            "partition_symbol": bound.symbol,
        },
    )


@rule(
    "AP302",
    "enumeration-sfa-crossover",
    FAMILY_PREDICTIVE,
    Severity.WARNING,
    "surviving enumeration flows reach the segment count: parallel "
    "execution is predicted no faster than the sequential golden run",
)
def _sfa_crossover(ctx: LintContext) -> Iterator[Diagnostic]:
    segments = _segments(ctx)
    if segments < 2:
        return
    bound = _uniform_boundary(ctx)
    survivors = bound.static_survivors
    if survivors + 1 < segments:
        return
    yield ctx.emit(
        "AP302",
        f"{survivors} surviving enumeration flow(s) + the always-active "
        f"flow match or exceed the {segments} available segments; the "
        f"golden fallback (sequential execution) is predicted to win — "
        f"enumeration cost has crossed the single-FSM line",
        data={
            "segments": segments,
            "flows": bound.flow_count,
            "surviving_flows": survivors,
            "partition_symbol": bound.symbol,
        },
    )

"""SARIF 2.1.0 rendering, shared by ``repro lint`` and ``repro analyze``.

One :class:`~repro.lint.diagnostics.Diagnostic` maps to one SARIF
``result``; the rule metadata from the registry (when the code is
registered) lands in the driver's ``rules`` array so SARIF viewers can
show the rule summary next to each finding.  ``repro analyze`` reuses
the same entry point by constructing plain ``Diagnostic`` values for
its prediction findings — the Diagnostic dataclass, not the registry,
is the contract.

Severity mapping follows the SARIF spec's recommended levels:
``INFO -> note``, ``WARNING -> warning``, ``ERROR -> error``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.lint.diagnostics import Diagnostic, LintReport, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def severity_to_level(severity: Severity) -> str:
    """The SARIF ``level`` for a diagnostic severity."""
    return _LEVEL[severity]


def _rule_metadata(diagnostics: Iterable[Diagnostic]) -> list[dict[str, Any]]:
    # Imported lazily: sarif rendering must not force rule registration.
    from repro.lint.registry import REGISTRY

    rules: dict[str, dict[str, Any]] = {}
    for diagnostic in diagnostics:
        if diagnostic.code in rules:
            continue
        entry: dict[str, Any] = {
            "id": diagnostic.code,
            "name": diagnostic.rule,
        }
        registered = REGISTRY.get(diagnostic.code)
        if registered is not None:
            entry["shortDescription"] = {"text": registered.summary}
            entry["defaultConfiguration"] = {
                "level": severity_to_level(registered.default_severity)
            }
        rules[diagnostic.code] = entry
    return [rules[code] for code in sorted(rules)]


def _result(diagnostic: Diagnostic, rule_index: dict[str, int]) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": diagnostic.code,
        "ruleIndex": rule_index[diagnostic.code],
        "level": severity_to_level(diagnostic.severity),
        "message": {"text": diagnostic.message},
        "locations": [
            {
                "logicalLocations": [
                    {
                        "name": diagnostic.automaton or "<automaton>",
                        "kind": "module",
                    }
                ]
            }
        ],
    }
    properties: dict[str, Any] = {}
    if diagnostic.states:
        properties["states"] = list(diagnostic.states)
    if diagnostic.data:
        properties["data"] = dict(diagnostic.data)
    if properties:
        result["properties"] = properties
    return result


def sarif_run(
    diagnostics: Iterable[Diagnostic],
    *,
    tool_name: str = "repro-lint",
    tool_version: str | None = None,
) -> dict[str, Any]:
    """One SARIF ``run`` object for a batch of diagnostics."""
    ordered = list(diagnostics)
    rules = _rule_metadata(ordered)
    rule_index = {entry["id"]: index for index, entry in enumerate(rules)}
    driver: dict[str, Any] = {
        "name": tool_name,
        "informationUri": "https://github.com/",
        "rules": rules,
    }
    if tool_version is not None:
        driver["version"] = tool_version
    return {
        "tool": {"driver": driver},
        "results": [_result(d, rule_index) for d in ordered],
        "columnKind": "utf16CodeUnits",
    }


def render_sarif(
    reports: LintReport | Iterable[LintReport],
    *,
    min_severity: Severity = Severity.INFO,
    tool_name: str = "repro-lint",
    indent: int | None = 2,
) -> str:
    """Render lint reports as one SARIF 2.1.0 log (one run)."""
    if isinstance(reports, LintReport):
        reports = [reports]
    diagnostics = [
        diagnostic
        for report in reports
        for diagnostic in report.at_least(min_severity)
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [sarif_run(diagnostics, tool_name=tool_name)],
    }
    return json.dumps(log, indent=indent, sort_keys=False)

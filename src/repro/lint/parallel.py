"""Parallelization-risk rules (``AP101``–``AP105``).

The paper's enumeration scheme only pays off when the Section 3
structural properties hold: some symbol has a small range (3.1),
connected components and common parents compress enumeration paths
into few flows (3.3.1/3.3.2), and an always-active group absorbs the
path-independent states (3.3.2).  These rules estimate each property
ahead of execution and warn when parallel execution would degenerate
to the golden sequential run (PaREM and the UVa DFA-vs-NFA study make
the same go/no-go call from static range/blowup characteristics).
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import FAMILY_PARALLEL, LintContext, rule


@rule(
    "AP101",
    "range-blowup",
    FAMILY_PARALLEL,
    Severity.WARNING,
    "even the best partition symbol has an oversized enumeration range",
)
def _range_blowup(ctx: LintContext) -> Iterator[Diagnostic]:
    if not len(ctx.automaton):
        return
    symbol, size = ctx.best_partition_symbol()
    threshold = ctx.config.max_enumeration_range
    if size > threshold:
        yield ctx.emit(
            "AP101",
            f"minimum enumeration range is {size} states (symbol "
            f"0x{symbol:02x}), above the blowup threshold of "
            f"{threshold}; no partition symbol tames start-state "
            "enumeration",
            data={"symbol": symbol, "range": size, "threshold": threshold},
        )


@rule(
    "AP102",
    "unit-blowup",
    FAMILY_PARALLEL,
    Severity.WARNING,
    "common-parent grouping leaves more enumeration units than flows fit",
)
def _unit_blowup(ctx: LintContext) -> Iterator[Diagnostic]:
    if not len(ctx.automaton):
        return
    symbol, size = ctx.best_partition_symbol()
    if size == 0:
        return
    units = ctx.best_symbol_units()
    if len(units) > ctx.config.max_flows:
        yield ctx.emit(
            "AP102",
            f"common-parent grouping leaves {len(units)} enumeration "
            f"units for the best symbol 0x{symbol:02x} (range {size}); "
            f"without component merging this exceeds the "
            f"{ctx.config.max_flows}-entry state-vector cache",
            data={"symbol": symbol, "units": len(units)},
        )


@rule(
    "AP103",
    "flow-cache-overflow",
    FAMILY_PARALLEL,
    Severity.WARNING,
    "flows after component merging exceed the state-vector cache",
)
def _flow_cache_overflow(ctx: LintContext) -> Iterator[Diagnostic]:
    if not len(ctx.automaton):
        return
    _, size = ctx.best_partition_symbol()
    if size == 0:
        return
    units = ctx.best_symbol_units()
    per_component: dict[int, int] = {}
    for unit in units:
        per_component[unit.component] = (
            per_component.get(unit.component, 0) + 1
        )
    flows = max(per_component.values(), default=0)
    asg_flows = 1 if ctx.path_independent else 0
    components = len(ctx.analysis.connected_components())
    if flows + asg_flows > ctx.config.max_flows:
        yield ctx.emit(
            "AP103",
            f"{flows} flows survive component merging across "
            f"{components} component(s) (+{asg_flows} ASG flow); a "
            f"segment needs more than the {ctx.config.max_flows}-entry "
            "state-vector cache and the plan overflows to the golden run",
            data={
                "flows": flows,
                "asg_flows": asg_flows,
                "components": components,
            },
        )


@rule(
    "AP104",
    "single-component",
    FAMILY_PARALLEL,
    Severity.INFO,
    "one connected component: component merging cannot reduce flows",
)
def _single_component(ctx: LintContext) -> Iterator[Diagnostic]:
    if len(ctx.automaton) < 2:
        return
    components = ctx.analysis.connected_components()
    if len(components) == 1:
        yield ctx.emit(
            "AP104",
            f"all {len(ctx.automaton)} states form one connected "
            "component; connected-component merging cannot share "
            "enumeration flows (every unit becomes its own flow)",
        )


@rule(
    "AP105",
    "no-always-active",
    FAMILY_PARALLEL,
    Severity.INFO,
    "no always-active or all-input states: the ASG flow is idle",
)
def _no_always_active(ctx: LintContext) -> Iterator[Diagnostic]:
    if len(ctx.automaton) and not ctx.path_independent:
        yield ctx.emit(
            "AP105",
            "no path-independent states at depth "
            f"{ctx.config.asg_max_depth}: the always-active flow covers "
            "nothing and every enumeration flow must run to completion",
        )

"""Diagnostic data model of the ``apcheck`` static-analysis pass.

A :class:`Diagnostic` is one finding: a stable code (``AP001``...), a
severity, a human-readable message, and the automaton states it anchors
to.  A :class:`LintReport` is the ordered collection produced by one
:func:`repro.lint.run_lint` invocation over one automaton.

Severity contract (stable across releases):

* ``ERROR`` — the automaton or deployment cannot work: execution or
  placement is guaranteed to fail or produce wrong results.  The
  pre-deployment gate refuses these.
* ``WARNING`` — legal but hazardous: wasted capacity, parallelization
  that cannot pay off, or hardware limits the model does not enforce.
* ``INFO`` — structural observations useful when tuning a workload.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ConfigurationError


@functools.total_ordering
class Severity(enum.Enum):
    """Diagnostic severity; ordering compares strength (ERROR highest)."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text.lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.value for s in cls)}"
            ) from None


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes
    ----------
    code:
        Stable identifier (``AP001``...); never reused across releases.
    rule:
        The kebab-case rule name (``unreachable-state``).
    severity:
        See the module docstring for the contract.
    message:
        One-line human-readable description.
    automaton:
        Name of the automaton the finding belongs to.
    states:
        Ids of the states the finding anchors to (possibly empty for
        whole-automaton findings), sorted ascending.
    data:
        Optional machine-readable detail (threshold values, sizes...)
        carried into the JSON rendering.
    """

    code: str
    rule: str
    severity: Severity
    message: str
    automaton: str = ""
    states: tuple[int, ...] = ()
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "automaton": self.automaton,
            "states": list(self.states),
        }
        if self.data:
            payload["data"] = dict(self.data)
        return payload


@dataclass(frozen=True)
class LintReport:
    """All diagnostics of one lint pass over one automaton."""

    automaton: str
    diagnostics: tuple[Diagnostic, ...] = ()

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def num_errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def num_warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def num_infos(self) -> int:
        return self.count(Severity.INFO)

    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def at_least(self, minimum: Severity) -> "LintReport":
        """The sub-report of diagnostics at or above ``minimum``."""
        return LintReport(
            automaton=self.automaton,
            diagnostics=tuple(
                d for d in self.diagnostics if d.severity >= minimum
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "automaton": self.automaton,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": {
                "error": self.num_errors,
                "warning": self.num_warnings,
                "info": self.num_infos,
            },
        }
